//! Canonical perf summary + regression gate.
//!
//! Builds `BENCH_summary.json`: critical-path breakdowns (via the
//! `insight` analyzer) and key counters/histograms for the Table-I
//! interleaved-arrays workload and the ART dump, each at 16 and 64 ranks
//! (sizes kept small enough for CI), plus per-workload `wall` entries
//! comparing the fiber event core against the OS-thread substrate and a
//! 2048-rank scheduler-storm cell whose speedup the committed baseline
//! gates (see `perfgate::WALL_TOL`). With `--diff <baseline>` the freshly
//! built summary is compared against the committed baseline using the
//! perfgate tolerance policy, and the process exits nonzero on any
//! regression — this is the CI perf gate.
//!
//!   cargo run --release -p bench --bin perf_report -- \
//!       [--ranks 16,64] [--len 4096] [--scale-ranks 2048] \
//!       [--out bench_results/BENCH_summary.json] \
//!       [--diff bench_results/BENCH_baseline.json]

use bench::{perfgate, report, Args, Calib, Json};
use insight::{Analyzer, Category};
use mpisim::{Backend, Registry, SimConfig, SimReport};
use pfs::Pfs;
use std::sync::Arc;
use std::time::Instant;
use workloads::art::{self, ArtConfig, ArtMethod};
use workloads::synthetic::{self, SynthParams};
use workloads::WlError;

/// Table-I/II interleaved-arrays dump-then-restart through TCIO, with
/// tracing and metrics on. Returns the report and the exported registry.
fn run_synth_perf(nprocs: usize, len: usize, backend: Backend) -> (SimReport<f64>, Registry) {
    let calib = Calib::unscaled();
    let p = SynthParams::with_types("i,d", len, 1).expect("valid params");
    let sim = SimConfig {
        trace: true,
        metrics: true,
        backend,
        ..calib.sim_config_unbudgeted()
    };
    let fs = Pfs::new(nprocs, calib.pfs.clone()).expect("pfs config");
    fs.enable_latency_metrics();
    let seg = calib.segment_size;
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let tcfg = tcio::TcioConfig::for_file_size_with_segment(
            p2.file_size(rk.nprocs()),
            rk.nprocs(),
            seg,
        );
        let w = synthetic::write_tcio(rk, &fs2, &p2, "/perf", Some(tcfg.clone()))
            .map_err(WlError::into_mpi)?;
        let r =
            synthetic::read_tcio(rk, &fs2, &p2, "/perf", Some(tcfg)).map_err(WlError::into_mpi)?;
        Ok(w.elapsed + r.elapsed)
    })
    .expect("perf synth run");
    let mut reg = Registry::new();
    reg.export_sim_report(&rep);
    fs.export_metrics(&mut reg);
    (rep, reg)
}

/// ART dump through TCIO with tracing and metrics on, sized for CI.
fn run_art_perf(nprocs: usize, backend: Backend) -> (SimReport<f64>, Registry) {
    let calib = Calib::unscaled();
    let cfg = ArtConfig {
        num_segments: 4 * nprocs,
        mu: 8.0,
        sigma: 2.0,
        ..ArtConfig::default()
    };
    let sim = SimConfig {
        trace: true,
        metrics: true,
        backend,
        ..calib.sim_config_unbudgeted()
    };
    let fs = Pfs::new(nprocs, calib.pfs.clone()).expect("pfs config");
    fs.enable_latency_metrics();
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        art::dump(rk, &fs2, &cfg, ArtMethod::Tcio, "/art")
            .map(|m| m.elapsed)
            .map_err(WlError::into_mpi)
    })
    .expect("perf art run");
    let mut reg = Registry::new();
    reg.export_sim_report(&rep);
    fs.export_metrics(&mut reg);
    (rep, reg)
}

/// One workload's summary entry: makespan, critical-path breakdown,
/// path imbalance, cache hit ratios, and the full registry export.
fn workload_entry(label: &str, rep: &SimReport<f64>, reg: &Registry) -> Json {
    let cp = Analyzer::new(&rep.traces).critical_path();
    assert!(
        !cp.truncated && cp.residual().abs() <= 1e-6 * cp.makespan.max(1.0),
        "{label}: critical path lost time (residual {})",
        cp.residual()
    );
    eprintln!("== {label} ==\n{}", cp.render());
    let b = cp.breakdown();
    let mut path = Json::obj();
    for c in Category::ALL {
        path.set(c.as_str(), Json::num(b.get(c)));
    }
    path.set("total", Json::num(b.total()));
    let mut entry = Json::obj()
        .with("makespan", Json::num(rep.makespan))
        .with("imbalance", Json::num(cp.imbalance()))
        .with("path", path);
    let ratio = |hits: Option<u64>, misses: Option<u64>| -> Option<f64> {
        let (h, m) = (hits? as f64, misses? as f64);
        (h + m > 0.0).then_some(h / (h + m))
    };
    if let Some(r) = ratio(
        reg.counter("tcio_l1_hits_total"),
        reg.counter("tcio_l1_misses_total"),
    ) {
        entry.set("l1_hit_ratio", Json::num(r));
    }
    if let Some(r) = ratio(
        reg.counter("tcio_l2_hits_total"),
        reg.counter("tcio_l2_misses_total"),
    ) {
        entry.set("l2_hit_ratio", Json::num(r));
    }
    let mut counters = Json::obj();
    for (k, v) in reg.counters() {
        counters.set(k, Json::num(v as f64));
    }
    let mut hists = Json::obj();
    for (k, h) in reg.hists() {
        hists.set(
            k,
            Json::obj()
                .with("count", Json::num(h.count() as f64))
                .with("sum", Json::num(h.sum() as f64)),
        );
    }
    entry.with("counters", counters).with("hists", hists)
}

/// Wall-clock comparison between the two execution substrates: run the
/// same workload under the fiber event core and the OS-thread substrate
/// and report both times plus the speedup. Each side is timed `reps`
/// times and the *minimum* kept — the best-of-N is a far more stable
/// estimator of the un-contended cost on shared CI machines than any
/// single sample. The raw seconds are machine-dependent (informational
/// under the gate policy); the *ratio* is gated — the fiber core earning
/// its keep over kernel context switches is a headline claim of the
/// runtime, so a collapse of the speedup is a perf regression.
fn wall_entry<R>(reps: usize, run: impl Fn(Backend) -> R) -> Json {
    let best = |backend: Backend| {
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                run(backend);
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::MAX, f64::min)
    };
    let event_s = best(Backend::Event);
    let thread_s = best(Backend::Thread);
    Json::obj()
        .with("event_s", Json::num(event_s))
        .with("thread_s", Json::num(thread_s))
        .with("speedup", Json::num(thread_s / event_s.max(1e-9)))
}

/// Scheduler storm: a ring sendrecv plus a barrier per round, across many
/// ranks, with negligible data and no file I/O. Every operation blocks,
/// so the run is dominated by task switching — the cost the event core
/// exists to remove. This is the workload whose wall-clock speedup the
/// committed baseline gates: on data-heavy workloads both substrates
/// spend their time in identical simulation work and the ratio sits near
/// 1 regardless of scheduler quality.
fn run_storm(nprocs: usize, rounds: usize, backend: Backend) {
    let sim = SimConfig {
        backend,
        ..Default::default()
    };
    mpisim::run(nprocs, sim, move |rk| {
        for r in 0..rounds {
            let peer = (rk.rank() + 1) % rk.nprocs();
            let from = (rk.rank() + rk.nprocs() - 1) % rk.nprocs();
            rk.send(peer, r as u64, &[0u8; 8])?;
            rk.recv(Some(from), Some(r as u64))?;
            rk.barrier()?;
        }
        Ok(())
    })
    .expect("storm run");
}

fn main() {
    let args = Args::parse();
    let ranks = args.get_list("ranks", &[16, 64]);
    let len = args.get_usize("len", 1 << 12);
    let out = args
        .get("out")
        .unwrap_or("bench_results/BENCH_summary.json");

    let mut workloads = Json::obj();
    for &n in &ranks {
        let (rep, reg) = run_synth_perf(n, len, Backend::Event);
        workloads.set(
            &format!("synth_p{n}"),
            workload_entry(&format!("synth_p{n}"), &rep, &reg)
                .with("wall", wall_entry(1, |b| run_synth_perf(n, len, b))),
        );
        let (rep, reg) = run_art_perf(n, Backend::Event);
        workloads.set(
            &format!("art_p{n}"),
            workload_entry(&format!("art_p{n}"), &rep, &reg)
                .with("wall", wall_entry(1, |b| run_art_perf(n, b))),
        );
    }
    // The gated scale cell (see `run_storm`): many ranks, all switching.
    let scale_ranks = args.get_usize("scale-ranks", 2048);
    workloads.set(
        &format!("sched_storm_p{scale_ranks}"),
        Json::obj().with("wall", wall_entry(3, |b| run_storm(scale_ranks, 10, b))),
    );
    let summary = Json::obj()
        .with("schema", Json::str("tcio-perf-v1"))
        .with("workloads", workloads);
    report::write_json_file(out, &summary).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    });

    if let Some(base_path) = args.get("diff") {
        let text = std::fs::read_to_string(base_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {base_path}: {e}");
            std::process::exit(2);
        });
        let baseline = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad baseline {base_path}: {e}");
            std::process::exit(2);
        });
        let verdict = perfgate::diff(&baseline, &summary);
        print!("{}", verdict.render());
        if !verdict.passed() {
            eprintln!("perf gate FAILED against {base_path}");
            std::process::exit(1);
        }
        println!("perf gate PASSED against {base_path}");
    }
}
