//! Canonical perf summary + regression gate.
//!
//! Builds `BENCH_summary.json`: critical-path breakdowns (via the
//! `insight` analyzer) and key counters/histograms for the Table-I
//! interleaved-arrays workload and the ART dump, each at 16 and 64 ranks
//! (sizes kept small enough for CI). With `--diff <baseline>` the freshly
//! built summary is compared against the committed baseline using the
//! perfgate tolerance policy, and the process exits nonzero on any
//! regression — this is the CI perf gate.
//!
//!   cargo run --release -p bench --bin perf_report -- \
//!       [--ranks 16,64] [--len 4096] [--out bench_results/BENCH_summary.json] \
//!       [--diff bench_results/BENCH_baseline.json]

use bench::{perfgate, report, Args, Calib, Json};
use insight::{Analyzer, Category};
use mpisim::{Registry, SimConfig, SimReport};
use pfs::Pfs;
use std::sync::Arc;
use workloads::art::{self, ArtConfig, ArtMethod};
use workloads::synthetic::{self, SynthParams};
use workloads::WlError;

/// Table-I/II interleaved-arrays dump-then-restart through TCIO, with
/// tracing and metrics on. Returns the report and the exported registry.
fn run_synth_perf(nprocs: usize, len: usize) -> (SimReport<f64>, Registry) {
    let calib = Calib::unscaled();
    let p = SynthParams::with_types("i,d", len, 1).expect("valid params");
    let sim = SimConfig {
        trace: true,
        metrics: true,
        ..calib.sim_config_unbudgeted()
    };
    let fs = Pfs::new(nprocs, calib.pfs.clone()).expect("pfs config");
    fs.enable_latency_metrics();
    let seg = calib.segment_size;
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let tcfg = tcio::TcioConfig::for_file_size_with_segment(
            p2.file_size(rk.nprocs()),
            rk.nprocs(),
            seg,
        );
        let w = synthetic::write_tcio(rk, &fs2, &p2, "/perf", Some(tcfg.clone()))
            .map_err(WlError::into_mpi)?;
        let r =
            synthetic::read_tcio(rk, &fs2, &p2, "/perf", Some(tcfg)).map_err(WlError::into_mpi)?;
        Ok(w.elapsed + r.elapsed)
    })
    .expect("perf synth run");
    let mut reg = Registry::new();
    reg.export_sim_report(&rep);
    fs.export_metrics(&mut reg);
    (rep, reg)
}

/// ART dump through TCIO with tracing and metrics on, sized for CI.
fn run_art_perf(nprocs: usize) -> (SimReport<f64>, Registry) {
    let calib = Calib::unscaled();
    let cfg = ArtConfig {
        num_segments: 4 * nprocs,
        mu: 8.0,
        sigma: 2.0,
        ..ArtConfig::default()
    };
    let sim = SimConfig {
        trace: true,
        metrics: true,
        ..calib.sim_config_unbudgeted()
    };
    let fs = Pfs::new(nprocs, calib.pfs.clone()).expect("pfs config");
    fs.enable_latency_metrics();
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        art::dump(rk, &fs2, &cfg, ArtMethod::Tcio, "/art")
            .map(|m| m.elapsed)
            .map_err(WlError::into_mpi)
    })
    .expect("perf art run");
    let mut reg = Registry::new();
    reg.export_sim_report(&rep);
    fs.export_metrics(&mut reg);
    (rep, reg)
}

/// One workload's summary entry: makespan, critical-path breakdown,
/// path imbalance, cache hit ratios, and the full registry export.
fn workload_entry(label: &str, rep: &SimReport<f64>, reg: &Registry) -> Json {
    let cp = Analyzer::new(&rep.traces).critical_path();
    assert!(
        !cp.truncated && cp.residual().abs() <= 1e-6 * cp.makespan.max(1.0),
        "{label}: critical path lost time (residual {})",
        cp.residual()
    );
    eprintln!("== {label} ==\n{}", cp.render());
    let b = cp.breakdown();
    let mut path = Json::obj();
    for c in Category::ALL {
        path.set(c.as_str(), Json::num(b.get(c)));
    }
    path.set("total", Json::num(b.total()));
    let mut entry = Json::obj()
        .with("makespan", Json::num(rep.makespan))
        .with("imbalance", Json::num(cp.imbalance()))
        .with("path", path);
    let ratio = |hits: Option<u64>, misses: Option<u64>| -> Option<f64> {
        let (h, m) = (hits? as f64, misses? as f64);
        (h + m > 0.0).then_some(h / (h + m))
    };
    if let Some(r) = ratio(
        reg.counter("tcio_l1_hits_total"),
        reg.counter("tcio_l1_misses_total"),
    ) {
        entry.set("l1_hit_ratio", Json::num(r));
    }
    if let Some(r) = ratio(
        reg.counter("tcio_l2_hits_total"),
        reg.counter("tcio_l2_misses_total"),
    ) {
        entry.set("l2_hit_ratio", Json::num(r));
    }
    let mut counters = Json::obj();
    for (k, v) in reg.counters() {
        counters.set(k, Json::num(v as f64));
    }
    let mut hists = Json::obj();
    for (k, h) in reg.hists() {
        hists.set(
            k,
            Json::obj()
                .with("count", Json::num(h.count() as f64))
                .with("sum", Json::num(h.sum() as f64)),
        );
    }
    entry.with("counters", counters).with("hists", hists)
}

fn main() {
    let args = Args::parse();
    let ranks = args.get_list("ranks", &[16, 64]);
    let len = args.get_usize("len", 1 << 12);
    let out = args
        .get("out")
        .unwrap_or("bench_results/BENCH_summary.json");

    let mut workloads = Json::obj();
    for &n in &ranks {
        let (rep, reg) = run_synth_perf(n, len);
        workloads.set(
            &format!("synth_p{n}"),
            workload_entry(&format!("synth_p{n}"), &rep, &reg),
        );
        let (rep, reg) = run_art_perf(n);
        workloads.set(
            &format!("art_p{n}"),
            workload_entry(&format!("art_p{n}"), &rep, &reg),
        );
    }
    let summary = Json::obj()
        .with("schema", Json::str("tcio-perf-v1"))
        .with("workloads", workloads);
    report::write_json_file(out, &summary).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    });

    if let Some(base_path) = args.get("diff") {
        let text = std::fs::read_to_string(base_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {base_path}: {e}");
            std::process::exit(2);
        });
        let baseline = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad baseline {base_path}: {e}");
            std::process::exit(2);
        });
        let verdict = perfgate::diff(&baseline, &summary);
        print!("{}", verdict.render());
        if !verdict.passed() {
            eprintln!("perf gate FAILED against {base_path}");
            std::process::exit(1);
        }
        println!("perf gate PASSED against {base_path}");
    }
}
