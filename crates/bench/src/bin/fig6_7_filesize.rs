//! Figures 6 and 7: throughput vs file size at a fixed 64 processes.
//!
//! Table II configuration with LEN swept 1M → 64M elements per process,
//! i.e. file sizes 768 MB → 48 GB. Ranks run under the Lonestar memory
//! budget (24 GB/node ÷ 12 cores = 2 GB/process, scaled with the data):
//! at 48 GB, OCIO must combine 0.75 GB in the application buffer *and*
//! hold a 0.75 GB collective buffer on top of the 0.75 GB arrays — over
//! budget, so the run fails with a simulated out-of-memory, exactly the
//! missing OCIO bar of the paper's Figs. 6/7. TCIO needs only its level-2
//! share plus one 1 MB level-1 buffer and survives.
//!
//! Usage: `cargo run --release -p bench --bin fig6_7_filesize [-- --scale 256 --procs 64]`

use bench::{fmt_bytes, Args, Calib, Table};
use workloads::synthetic::Method;

fn main() {
    let args = Args::parse();
    let scale = args.get_u64("scale", 256);
    let nprocs = args.get_usize("procs", 64);
    // LEN_array = 1M, 4M, 16M, 64M → file sizes 768MB, 3GB, 12GB, 48GB.
    let lens: Vec<usize> = args.get_list("lens", &[1 << 20, 1 << 22, 1 << 24, 1 << 26]);
    let calib = Calib::paper(scale);

    println!("Figs. 6/7 — file-size sweep at P={nprocs} (scaled 1/{scale}), Lonestar memory budget enforced\n");
    let mut table = Table::new(vec![
        "file size",
        "TCIO write",
        "OCIO write",
        "TCIO read",
        "OCIO read",
    ]);
    for &len in &lens {
        let file_virtual = (len as u64) * 12 * nprocs as u64;
        let (tw, tr) = bench::run_synth(&calib, nprocs, len, 1, Method::Tcio, true);
        let (ow, or) = bench::run_synth(&calib, nprocs, len, 1, Method::Ocio, true);
        table.row(vec![
            fmt_bytes(file_virtual),
            tw.cell(),
            ow.cell(),
            tr.cell(),
            or.cell(),
        ]);
        eprintln!(
            "  {}: TCIO w={} OCIO w={} TCIO r={} OCIO r={}",
            fmt_bytes(file_virtual),
            tw.cell(),
            ow.cell(),
            tr.cell(),
            or.cell()
        );
    }
    table.print();
    match table.write_csv("fig6_7.csv") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    println!("\nexpected shape: OCIO fails with OOM at 48GB on both write and read; TCIO completes everywhere");
}
