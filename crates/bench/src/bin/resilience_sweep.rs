//! Gray-failure resilience sweep: the Table II dump-then-restart workload
//! under a fault plan scaled from inert (intensity 0) to full strength
//! (intensity 1), each point run twice — with the full defense stack
//! (health tracking, circuit breakers, degraded-mode writes, adaptive
//! hedged reads, post-run rebuild) and without — and reported as latency
//! percentiles plus defense counters.
//!
//!   cargo run --release --bin resilience_sweep -- \
//!       --procs 4 --len 2097152 --points 4 --scale 1024 \
//!       [--plan plans/flaky_ost.toml] [--json bench_results/resilience_sweep.json]
//!
//! Without `--plan` the built-in flaky-OST plan is used (20x tail-latency
//! spikes on OST 0 at 80% duty for the first three virtual seconds).
//! The committed baseline pins the headline claim: at full intensity the
//! defended stack's p99 stays within 2x of fault-free while the
//! undefended stack blows far past it, and the post-run rebuild drains
//! every relocated extent.

use bench::resilience::{sweep_calib, sweep_to_json};
use bench::Args;
use chaos::{Fault, FaultPlan};

/// The built-in plan: one gray-failure (intermittent, never fail-stop)
/// fault, strong enough that an undefended run's tail collapses.
fn builtin_plan() -> FaultPlan {
    FaultPlan::new(23).with(Fault::FlakyOst {
        ost: 0,
        factor: 20.0,
        period: 0.005,
        duty: 0.8,
        from: 0.0,
        until: 3.0,
    })
}

fn main() {
    let args = Args::parse();
    let nprocs = args.get_usize("procs", 4);
    let len = args.get_usize("len", 1 << 21);
    let size_access = args.get_usize("size-access", 1);
    let points = args.get_usize("points", 4).max(2);
    let scale = args.get_u64("scale", 1024);
    let calib = sweep_calib(scale);
    let plan = match args.get("plan") {
        None => builtin_plan(),
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read fault plan {path}: {e}");
                std::process::exit(2);
            });
            FaultPlan::parse(&text).unwrap_or_else(|e| {
                eprintln!("bad fault plan {path}: {e}");
                std::process::exit(2);
            })
        }
    };
    let doc = sweep_to_json(&plan, &calib, nprocs, len, size_access, points);
    println!("{}", doc.render());
    bench::emit_json(&args, &doc);
}
