//! Figure 5: synthetic-benchmark throughput vs number of processes.
//!
//! Table II configuration: two arrays (int, double) of LEN = 4M elements
//! per process, SIZE_access = 1, P swept 64 → 1024 (weak scaling in data).
//! The paper's findings this binary reproduces:
//!
//! * writes: OCIO wins at small scale (≤256), TCIO wins at ≥512 — the
//!   all-to-all exchange burst and per-pair connection growth catch up
//!   with OCIO;
//! * reads: TCIO wins throughout and the gap widens with scale.
//!
//! Usage: `cargo run --release -p bench --bin fig5_scale [-- --procs 64,128,256,512,1024 --scale 256 --len 4194304 --size-access 1]`

use bench::{mbs, sparkline, Args, Calib, Table};
use workloads::synthetic::Method;

fn main() {
    let args = Args::parse();
    let ps = args.get_list("procs", &[64, 128, 256, 512, 1024]);
    let scale = args.get_u64("scale", 256);
    let len_virtual = args.get_usize("len", 4 << 20);
    let size_access = args.get_usize("size-access", 1);
    let calib = Calib::paper(scale);

    println!(
        "Fig. 5 — synthetic benchmark, LEN={} elements/proc (scaled 1/{scale}), SIZE_access={size_access}",
        len_virtual
    );
    println!("(throughputs in paper-equivalent MB/s)\n");

    let mut table = Table::new(vec![
        "procs",
        "TCIO write",
        "OCIO write",
        "TCIO read",
        "OCIO read",
    ]);
    let mut series: [Vec<f64>; 4] = Default::default();
    for &p in &ps {
        let (tw, tr) = bench::run_synth(&calib, p, len_virtual, size_access, Method::Tcio, false);
        let (ow, or) = bench::run_synth(&calib, p, len_virtual, size_access, Method::Ocio, false);
        for (k, o) in [&tw, &ow, &tr, &or].iter().enumerate() {
            series[k].push(o.throughput().unwrap_or(0.0));
        }
        table.row(vec![
            p.to_string(),
            tw.cell(),
            ow.cell(),
            tr.cell(),
            or.cell(),
        ]);
        eprintln!(
            "  P={p}: TCIO w={} o-w={} r={} o-r={}",
            tw.cell(),
            ow.cell(),
            tr.cell(),
            or.cell()
        );
    }
    table.print();
    println!(
        "
shape:  TCIO write {}   OCIO write {}   TCIO read {}   OCIO read {}",
        sparkline(&series[0]),
        sparkline(&series[1]),
        sparkline(&series[2]),
        sparkline(&series[3])
    );
    match table.write_csv("fig5.csv") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    // Shape summary (the claims the paper makes about this figure).
    println!("\nexpected shape: OCIO ahead on writes at small P; TCIO ahead at large P; TCIO ahead on all reads");
    let _ = mbs(0.0);
}
