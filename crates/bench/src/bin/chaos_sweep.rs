//! Fault-intensity sweep: run the Table II dump-then-restart workload
//! under a fault plan scaled from inert (intensity 0) to full strength
//! (intensity 1), for TCIO and OCIO, and report the slowdown curves plus
//! resilience counters as JSON on stdout.
//!
//!   cargo run --release --bin chaos_sweep -- \
//!       --procs 8 --len 65536 --points 5 [--plan plans/mixed.toml]
//!
//! Without `--plan` a built-in mixed plan is used (OST brownout + outage,
//! message delay, one straggler rank, elevated request overhead).

use bench::{runner, Args, Calib};
use chaos::{Fault, FaultPlan};
use workloads::synthetic::Method;

/// The built-in full-intensity plan: one fault from every family that the
/// synthetic workload exercises, windowed so outages lift well before the
/// retry budget runs out.
fn builtin_plan() -> FaultPlan {
    FaultPlan::new(0xC0FFEE)
        .with(Fault::OstSlowdown {
            ost: 0,
            factor: 4.0,
            from: 0.0,
            until: 1e9,
        })
        // Outage on OST 0: stripe 0 of the first file always lands there,
        // so the plan bites even when a small file spans a single stripe.
        .with(Fault::OstOutage {
            ost: 0,
            from: 0.0,
            until: 0.05,
        })
        .with(Fault::RequestOverhead {
            extra: 100.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(Fault::MessageDelay {
            delay: 50.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(Fault::RankStall {
            rank: 1,
            from: 0.0,
            until: 0.02,
        })
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = Args::parse();
    let nprocs = args.get_usize("procs", 8);
    let len = args.get_usize("len", 1 << 16);
    let size_access = args.get_usize("size-access", 1);
    let points = args.get_usize("points", 5).max(2);
    let scale = args.get_u64("scale", 1);
    let calib = if scale == 1 {
        Calib::unscaled()
    } else {
        Calib::paper(scale)
    };
    let plan = match args.get("plan") {
        None => builtin_plan(),
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read fault plan {path}: {e}");
                std::process::exit(2);
            });
            FaultPlan::parse(&text).unwrap_or_else(|e| {
                eprintln!("bad fault plan {path}: {e}");
                std::process::exit(2);
            })
        }
    };

    let methods = [(Method::Tcio, "tcio"), (Method::Ocio, "ocio")];
    let mut baselines = [0.0f64; 2];
    let mut out = String::from("{\n  \"points\": [\n");
    for p in 0..points {
        let k = p as f64 / (points - 1) as f64;
        let engine = plan.scaled(k).build().unwrap_or_else(|e| {
            eprintln!("fault plan rejected at intensity {k}: {e}");
            std::process::exit(2);
        });
        let mut cells = Vec::new();
        for (m, (method, name)) in methods.iter().enumerate() {
            let r = runner::run_synth_chaos(
                &calib,
                nprocs,
                len,
                size_access,
                *method,
                Some(engine.clone()),
            );
            let total = r.write_s + r.read_s;
            if p == 0 {
                baselines[m] = total;
            }
            let slowdown = total / baselines[m];
            eprintln!(
                "intensity {k:.2} {name}: write {:.4}s read {:.4}s slowdown {:.3}x \
                 retries {} stalls {} transients {}",
                r.write_s, r.read_s, slowdown, r.io_retries, r.chaos_stalls, r.transient_errors
            );
            cells.push(format!(
                "\"{name}\": {{\"write_s\": {}, \"read_s\": {}, \"slowdown\": {}, \
                 \"io_retries\": {}, \"chaos_stalls\": {}, \"transient_errors\": {}}}",
                json_f(r.write_s),
                json_f(r.read_s),
                json_f(slowdown),
                r.io_retries,
                r.chaos_stalls,
                r.transient_errors
            ));
        }
        out.push_str(&format!(
            "    {{\"intensity\": {}, {}}}{}\n",
            json_f(k),
            cells.join(", "),
            if p + 1 < points { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    print!("{out}");
}
