//! Fault-intensity sweep: run the Table II dump-then-restart workload
//! under a fault plan scaled from inert (intensity 0) to full strength
//! (intensity 1), for TCIO and OCIO, and report the slowdown curves plus
//! resilience counters as JSON on stdout.
//!
//!   cargo run --release --bin chaos_sweep -- \
//!       --procs 8 --len 65536 --points 5 [--plan plans/mixed.toml] \
//!       [--crash-rank 0] [--crash-at 0.002]
//!
//! Without `--plan` a built-in mixed plan is used (OST brownout + outage,
//! message delay, one straggler rank, elevated request overhead).
//!
//! A second sweep then adds a crash-stop of `--crash-rank` at virtual time
//! `--crash-at` to the same plan: TCIO's durability epochs recover the
//! dead rank's level-2 segments and the run completes (with the recovery
//! cost visible in the slowdown and `segments_recovered`); OCIO has no
//! recovery and reports `"completed": false`. Pass `--crash-rank -1` to
//! skip the crash sweep.

use bench::{runner, Args, Calib};
use chaos::{Fault, FaultPlan};
use workloads::synthetic::Method;

/// The built-in full-intensity plan: one fault from every family that the
/// synthetic workload exercises, windowed so outages lift well before the
/// retry budget runs out.
fn builtin_plan() -> FaultPlan {
    FaultPlan::new(0xC0FFEE)
        .with(Fault::OstSlowdown {
            ost: 0,
            factor: 4.0,
            from: 0.0,
            until: 1e9,
        })
        // Outage on OST 0: stripe 0 of the first file always lands there,
        // so the plan bites even when a small file spans a single stripe.
        .with(Fault::OstOutage {
            ost: 0,
            from: 0.0,
            until: 0.05,
        })
        .with(Fault::RequestOverhead {
            extra: 100.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(Fault::MessageDelay {
            delay: 50.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(Fault::RankStall {
            rank: 1,
            from: 0.0,
            until: 0.02,
        })
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// Run the intensity sweep for one plan and return the JSON points array
/// (indented for embedding). `label` prefixes the progress lines.
#[allow(clippy::too_many_arguments)]
fn sweep(
    plan: &FaultPlan,
    label: &str,
    calib: &Calib,
    nprocs: usize,
    len: usize,
    size_access: usize,
    points: usize,
) -> String {
    let methods = [(Method::Tcio, "tcio"), (Method::Ocio, "ocio")];
    let mut baselines = [0.0f64; 2];
    let mut out = String::new();
    for p in 0..points {
        let k = p as f64 / (points - 1) as f64;
        let engine = plan.scaled(k).build().unwrap_or_else(|e| {
            eprintln!("fault plan rejected at intensity {k}: {e}");
            std::process::exit(2);
        });
        let mut cells = Vec::new();
        for (m, (method, name)) in methods.iter().enumerate() {
            let r = runner::run_synth_chaos(
                calib,
                nprocs,
                len,
                size_access,
                *method,
                Some(engine.clone()),
            );
            let total = r.write_s + r.read_s;
            if p == 0 {
                baselines[m] = total;
            }
            let slowdown = total / baselines[m];
            eprintln!(
                "{label}intensity {k:.2} {name}: write {:.4}s read {:.4}s slowdown {:.3}x \
                 retries {} stalls {} transients {} crashes {} recovered {}{}",
                r.write_s,
                r.read_s,
                slowdown,
                r.io_retries,
                r.chaos_stalls,
                r.transient_errors,
                r.rank_crashes,
                r.segments_recovered,
                if r.completed { "" } else { " [ABORTED]" },
            );
            cells.push(format!(
                "\"{name}\": {{\"completed\": {}, \"write_s\": {}, \"read_s\": {}, \
                 \"slowdown\": {}, \"io_retries\": {}, \"chaos_stalls\": {}, \
                 \"transient_errors\": {}, \"rank_crashes\": {}, \"segments_recovered\": {}}}",
                r.completed,
                json_f(r.write_s),
                json_f(r.read_s),
                json_f(slowdown),
                r.io_retries,
                r.chaos_stalls,
                r.transient_errors,
                r.rank_crashes,
                r.segments_recovered
            ));
        }
        out.push_str(&format!(
            "    {{\"intensity\": {}, {}}}{}\n",
            json_f(k),
            cells.join(", "),
            if p + 1 < points { "," } else { "" }
        ));
    }
    out
}

fn main() {
    let args = Args::parse();
    let nprocs = args.get_usize("procs", 8);
    let len = args.get_usize("len", 1 << 16);
    let size_access = args.get_usize("size-access", 1);
    let points = args.get_usize("points", 5).max(2);
    let scale = args.get_u64("scale", 1);
    let calib = if scale == 1 {
        Calib::unscaled()
    } else {
        Calib::paper(scale)
    };
    let plan = match args.get("plan") {
        None => builtin_plan(),
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read fault plan {path}: {e}");
                std::process::exit(2);
            });
            FaultPlan::parse(&text).unwrap_or_else(|e| {
                eprintln!("bad fault plan {path}: {e}");
                std::process::exit(2);
            })
        }
    };

    let mut out = String::from("{\n  \"points\": [\n");
    out.push_str(&sweep(&plan, "", &calib, nprocs, len, size_access, points));
    out.push_str("  ]");

    // Crash sweep: the same plan with one rank crash-stopped mid-dump.
    // TCIO recovers (durability epochs); OCIO aborts. Rank 0 is the
    // default victim because it serves round-robin slot 0: the dump's
    // first windows live in its level-2 segment, so its death leaves
    // acknowledged bytes that only the buddy replica can still produce.
    let crash_rank = args.get("crash-rank").unwrap_or("0");
    if let Ok(rank) = crash_rank.parse::<usize>() {
        let at = args
            .get("crash-at")
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.002);
        if rank >= nprocs {
            eprintln!("--crash-rank {rank} out of range for --procs {nprocs}");
            std::process::exit(2);
        }
        let crash_plan = plan.clone().with(Fault::RankCrash { rank, at });
        out.push_str(&format!(
            ",\n  \"crash\": {{\"rank\": {rank}, \"at\": {}, \"points\": [\n",
            json_f(at)
        ));
        out.push_str(&sweep(
            &crash_plan,
            "crash ",
            &calib,
            nprocs,
            len,
            size_access,
            points,
        ));
        out.push_str("  ]}");
    }
    out.push_str("\n}\n");
    print!("{out}");
    if let Some(path) = args.get("json") {
        bench::write_json_text(path, &out).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
    }
}
