//! Fault-intensity sweep: run the Table II dump-then-restart workload
//! under a fault plan scaled from inert (intensity 0) to full strength
//! (intensity 1), for TCIO and OCIO, and report the slowdown curves plus
//! resilience counters as JSON on stdout.
//!
//!   cargo run --release --bin chaos_sweep -- \
//!       --procs 8 --len 65536 --points 5 [--plan plans/mixed.toml] \
//!       [--crash-rank 0] [--crash-at 0.002] [--json out.json]
//!
//! Without `--plan` a built-in mixed plan is used (OST brownout + outage,
//! message delay, one straggler rank, elevated request overhead).
//!
//! A second sweep then adds a crash-stop of `--crash-rank` at virtual time
//! `--crash-at` to the same plan: TCIO's durability epochs recover the
//! dead rank's level-2 segments and the run completes (with the recovery
//! cost visible in the slowdown and `segments_recovered`); OCIO has no
//! recovery and reports `"completed": false`. Pass `--crash-rank -1` to
//! skip the crash sweep.

use bench::{runner, Args, Calib, Json};
use chaos::{Fault, FaultPlan};
use workloads::synthetic::Method;

/// The built-in full-intensity plan: one fault from every family that the
/// synthetic workload exercises, windowed so outages lift well before the
/// retry budget runs out.
fn builtin_plan() -> FaultPlan {
    FaultPlan::new(0xC0FFEE)
        .with(Fault::OstSlowdown {
            ost: 0,
            factor: 4.0,
            from: 0.0,
            until: 1e9,
        })
        // Outage on OST 0: stripe 0 of the first file always lands there,
        // so the plan bites even when a small file spans a single stripe.
        .with(Fault::OstOutage {
            ost: 0,
            from: 0.0,
            until: 0.05,
        })
        .with(Fault::RequestOverhead {
            extra: 100.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(Fault::MessageDelay {
            delay: 50.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(Fault::RankStall {
            rank: 1,
            from: 0.0,
            until: 0.02,
        })
}

/// Run the intensity sweep for one plan and return the points array.
/// `label` prefixes the progress lines.
#[allow(clippy::too_many_arguments)]
fn sweep(
    plan: &FaultPlan,
    label: &str,
    calib: &Calib,
    nprocs: usize,
    len: usize,
    size_access: usize,
    points: usize,
) -> Json {
    let methods = [(Method::Tcio, "tcio"), (Method::Ocio, "ocio")];
    let mut baselines = [0.0f64; 2];
    let mut out = Vec::new();
    for p in 0..points {
        let k = p as f64 / (points - 1) as f64;
        let engine = plan.scaled(k).build().unwrap_or_else(|e| {
            eprintln!("fault plan rejected at intensity {k}: {e}");
            std::process::exit(2);
        });
        let mut point = Json::obj().with("intensity", Json::num(k));
        for (m, (method, name)) in methods.iter().enumerate() {
            let r = runner::run_synth_chaos(
                calib,
                nprocs,
                len,
                size_access,
                *method,
                Some(engine.clone()),
            );
            let total = r.write_s + r.read_s;
            if p == 0 {
                baselines[m] = total;
            }
            let slowdown = total / baselines[m];
            eprintln!(
                "{label}intensity {k:.2} {name}: write {:.4}s read {:.4}s slowdown {:.3}x \
                 retries {} stalls {} transients {} crashes {} recovered {}{}",
                r.write_s,
                r.read_s,
                slowdown,
                r.io_retries,
                r.chaos_stalls,
                r.transient_errors,
                r.rank_crashes,
                r.segments_recovered,
                if r.completed { "" } else { " [ABORTED]" },
            );
            point.set(
                name,
                Json::obj()
                    .with("completed", Json::Bool(r.completed))
                    .with("write_s", Json::num(r.write_s))
                    .with("read_s", Json::num(r.read_s))
                    .with("slowdown", Json::num(slowdown))
                    .with("io_retries", Json::num(r.io_retries as f64))
                    .with("chaos_stalls", Json::num(r.chaos_stalls as f64))
                    .with("transient_errors", Json::num(r.transient_errors as f64))
                    .with("rank_crashes", Json::num(r.rank_crashes as f64))
                    .with("segments_recovered", Json::num(r.segments_recovered as f64)),
            );
        }
        out.push(point);
    }
    Json::Arr(out)
}

fn main() {
    let args = Args::parse();
    let nprocs = args.get_usize("procs", 8);
    let len = args.get_usize("len", 1 << 16);
    let size_access = args.get_usize("size-access", 1);
    let points = args.get_usize("points", 5).max(2);
    let scale = args.get_u64("scale", 1);
    let calib = if scale == 1 {
        Calib::unscaled()
    } else {
        Calib::paper(scale)
    };
    let plan = match args.get("plan") {
        None => builtin_plan(),
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read fault plan {path}: {e}");
                std::process::exit(2);
            });
            FaultPlan::parse(&text).unwrap_or_else(|e| {
                eprintln!("bad fault plan {path}: {e}");
                std::process::exit(2);
            })
        }
    };

    let mut doc = Json::obj().with(
        "points",
        sweep(&plan, "", &calib, nprocs, len, size_access, points),
    );

    // Crash sweep: the same plan with one rank crash-stopped mid-dump.
    // TCIO recovers (durability epochs); OCIO aborts. Rank 0 is the
    // default victim because it serves round-robin slot 0: the dump's
    // first windows live in its level-2 segment, so its death leaves
    // acknowledged bytes that only the buddy replica can still produce.
    let crash_rank = args.get("crash-rank").unwrap_or("0");
    if let Ok(rank) = crash_rank.parse::<usize>() {
        let at = args
            .get("crash-at")
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.002);
        if rank >= nprocs {
            eprintln!("--crash-rank {rank} out of range for --procs {nprocs}");
            std::process::exit(2);
        }
        let crash_plan = plan.clone().with(Fault::RankCrash { rank, at });
        doc.set(
            "crash",
            Json::obj()
                .with("rank", Json::num(rank as f64))
                .with("at", Json::num(at))
                .with(
                    "points",
                    sweep(
                        &crash_plan,
                        "crash ",
                        &calib,
                        nprocs,
                        len,
                        size_access,
                        points,
                    ),
                ),
        );
    }
    println!("{}", doc.render());
    bench::emit_json(&args, &doc);
}
