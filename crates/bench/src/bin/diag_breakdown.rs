//! Diagnostic: virtual-time breakdown of one synthetic run per method.
//! Not a paper figure — used to calibrate the cost model (EXPERIMENTS.md
//! documents the resulting constants).
//!
//! Usage: `cargo run --release -p bench --bin diag_breakdown [-- --procs 64 --scale 256 --len 4194304]`
//! `--json <path>` additionally writes the runs as structured JSON.

use bench::{emit_json, Args, Calib, Json};
use pfs::Pfs;
use std::sync::Arc;
use tcio::TcioConfig;
use workloads::synthetic::{self, Method, SynthParams};
use workloads::WlError;

fn main() {
    let args = Args::parse();
    let scale = args.get_u64("scale", 256);
    let nprocs = args.get_usize("procs", 64);
    let len_virtual = args.get_usize("len", 4 << 20);
    let calib = Calib::paper(scale);
    let len_real = (len_virtual as u64 / scale).max(1) as usize;
    let p = SynthParams::with_types("i,d", len_real, 1).unwrap();
    let bytes_real = p.file_size(nprocs);
    println!(
        "P={nprocs}, LEN_real={len_real}, file_real={} B (virtual {}), segment_real={} B",
        bytes_real,
        calib.fmt_virtual(bytes_real),
        calib.segment_size
    );

    let mut runs = Vec::new();
    for method in [Method::Tcio, Method::Ocio] {
        for phase in ["write", "read"] {
            let fs = Pfs::new(nprocs, calib.pfs.clone()).unwrap();
            let fs2 = Arc::clone(&fs);
            let p2 = p.clone();
            let seg = calib.segment_size;
            // Always write first (so reads have data); time only `phase`.
            let rep = mpisim::run(nprocs, calib.sim_config_unbudgeted(), move |rk| {
                let tcfg = TcioConfig::for_file_size_with_segment(
                    p2.file_size(rk.nprocs()),
                    rk.nprocs(),
                    seg,
                );
                let tcfg = move || tcfg.clone();
                let w = match method {
                    Method::Tcio => synthetic::write_tcio(rk, &fs2, &p2, "/d", Some(tcfg())),
                    Method::Ocio => synthetic::write_ocio(
                        rk,
                        &fs2,
                        &p2,
                        "/d",
                        &mpiio::CollectiveConfig::default(),
                    ),
                    Method::Vanilla => unreachable!(),
                }
                .map_err(WlError::into_mpi)?;
                if phase == "write" {
                    return Ok(w.elapsed);
                }
                let r = match method {
                    Method::Tcio => synthetic::read_tcio(rk, &fs2, &p2, "/d", Some(tcfg())),
                    Method::Ocio => synthetic::read_ocio(
                        rk,
                        &fs2,
                        &p2,
                        "/d",
                        &mpiio::CollectiveConfig::default(),
                    ),
                    Method::Vanilla => unreachable!(),
                }
                .map_err(WlError::into_mpi)?;
                Ok(r.elapsed)
            })
            .expect("run");
            let elapsed = rep.results[0];
            let agg = rep.aggregate_stats();
            let fstats = rep.fabric;
            let pstats = fs.stats.snapshot();
            println!(
                "\n{} {phase}: {:.3}s virtual → {:.0} MB/s (paper-equivalent)",
                method.label(),
                elapsed,
                calib.throughput_mbs(bytes_real, elapsed)
            );
            println!(
                "  net: {} msgs / {} B, {} conn misses, {} congested",
                fstats.messages, fstats.bytes, fstats.conn_misses, fstats.congested_transfers
            );
            println!(
                "  rma: {} epochs, {} puts / {} B, {} gets / {} B",
                agg.rma_epochs, agg.puts, agg.put_bytes, agg.gets, agg.get_bytes
            );
            println!(
                "  pfs: {} wr-rpcs / {} B, {} rd-rpcs / {} B, {} lock transfers",
                pstats.write_rpcs,
                pstats.bytes_written,
                pstats.read_rpcs,
                pstats.bytes_read,
                pstats.lock_transfers
            );
            println!(
                "  collectives: {}, total collective wait {:.3}s",
                agg.collectives, agg.collective_wait
            );
            runs.push(
                Json::obj()
                    .with("method", Json::str(method.label()))
                    .with("phase", Json::str(phase))
                    .with("elapsed_s", Json::num(elapsed))
                    .with(
                        "throughput_mbs",
                        Json::num(calib.throughput_mbs(bytes_real, elapsed)),
                    )
                    .with(
                        "net",
                        Json::obj()
                            .with("messages", Json::num(fstats.messages as f64))
                            .with("bytes", Json::num(fstats.bytes as f64))
                            .with("conn_misses", Json::num(fstats.conn_misses as f64))
                            .with("congested", Json::num(fstats.congested_transfers as f64)),
                    )
                    .with(
                        "rma",
                        Json::obj()
                            .with("epochs", Json::num(agg.rma_epochs as f64))
                            .with("puts", Json::num(agg.puts as f64))
                            .with("put_bytes", Json::num(agg.put_bytes as f64))
                            .with("gets", Json::num(agg.gets as f64))
                            .with("get_bytes", Json::num(agg.get_bytes as f64)),
                    )
                    .with(
                        "pfs",
                        Json::obj()
                            .with("write_rpcs", Json::num(pstats.write_rpcs as f64))
                            .with("bytes_written", Json::num(pstats.bytes_written as f64))
                            .with("read_rpcs", Json::num(pstats.read_rpcs as f64))
                            .with("bytes_read", Json::num(pstats.bytes_read as f64))
                            .with("lock_transfers", Json::num(pstats.lock_transfers as f64)),
                    )
                    .with("collectives", Json::num(agg.collectives as f64))
                    .with("collective_wait_s", Json::num(agg.collective_wait)),
            );
        }
    }
    emit_json(
        &args,
        &Json::obj()
            .with("bench", Json::str("diag_breakdown"))
            .with("procs", Json::num(nprocs as f64))
            .with("len_real", Json::num(len_real as f64))
            .with("file_real_bytes", Json::num(bytes_real as f64))
            .with("runs", Json::Arr(runs)),
    );
}
