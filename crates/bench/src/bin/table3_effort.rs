//! Table III + the Programs 2/3 comparison: programming effort, memory
//! efficiency, and the qualitative differences between OCIO and TCIO.
//!
//! * **Lines of code** are counted from the actual benchmark
//!   implementations in `workloads::synthetic` (the Rust renderings of the
//!   paper's Program 2 and Program 3), excluding comments and blank lines.
//! * **Memory efficiency** is measured: the peak simulated memory per
//!   process of each method on the same workload, reported as a multiple
//!   of the per-process dataset (the paper's §V.B.2b accounting: OCIO ≈ 3×
//!   the data — arrays + combine buffer + collective buffer; TCIO ≈ 2× +
//!   one segment).
//!
//! Usage: `cargo run --release -p bench --bin table3_effort`

use bench::{Args, Calib, Table};
use pfs::Pfs;
use std::sync::Arc;
use workloads::synthetic::{self, Method, SynthParams};
use workloads::WlError;

/// The synthetic-benchmark source, for honest line counting.
const SYNTH_SRC: &str = include_str!("../../../workloads/src/synthetic.rs");

/// Count the non-blank, non-comment source lines between the
/// `[NAME-begin]` and `[NAME-end]` markers in the workload module — the
/// I/O-essential code of the paper's Program 2 / Program 3 renderings.
fn fn_loc(name: &str) -> usize {
    let begin = format!("[{name}-begin]");
    let end = format!("[{name}-end]");
    let start = SYNTH_SRC
        .find(&begin)
        .unwrap_or_else(|| panic!("{begin} marker not found"));
    let stop = SYNTH_SRC[start..]
        .find(&end)
        .map(|o| start + o)
        .unwrap_or_else(|| panic!("{end} marker not found"));
    SYNTH_SRC[start..stop]
        .lines()
        .skip(1) // the begin-marker line itself
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("//")
        })
        .count()
}

fn peak_multiple(method: Method, nprocs: usize, p: &SynthParams, calib: &Calib) -> f64 {
    let fs = Pfs::new(nprocs, calib.pfs.clone()).unwrap();
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let seg = calib.segment_size;
    let rep = mpisim::run(nprocs, calib.sim_config_unbudgeted(), move |rk| {
        match method {
            Method::Tcio => {
                let tcfg = tcio::TcioConfig::for_file_size_with_segment(
                    p2.file_size(rk.nprocs()),
                    rk.nprocs(),
                    seg,
                );
                synthetic::write_tcio(rk, &fs2, &p2, "/m", Some(tcfg))
            }
            Method::Ocio => {
                synthetic::write_ocio(rk, &fs2, &p2, "/m", &mpiio::CollectiveConfig::default())
            }
            Method::Vanilla => synthetic::write_vanilla(rk, &fs2, &p2, "/m"),
        }
        .map_err(WlError::into_mpi)
    })
    .expect("run");
    let peak = rep.stats.iter().map(|s| s.mem_peak).max().unwrap_or(0);
    peak as f64 / p.bytes_per_rank() as f64
}

fn main() {
    let _args = Args::parse();
    let calib = Calib::paper(64);
    let p = SynthParams::with_types("i,d", 1 << 16, 1).unwrap();
    let nprocs = 8;

    let ocio_loc = fn_loc("program2");
    let tcio_loc = fn_loc("program3");
    let ocio_peak = peak_multiple(Method::Ocio, nprocs, &p, &calib);
    let tcio_peak = peak_multiple(Method::Tcio, nprocs, &p, &calib);

    println!("Table III — comparison between OCIO and TCIO (measured where possible)\n");
    let mut t = Table::new(vec!["property", "OCIO", "TCIO"]);
    t.row(vec!["application-level buffer", "yes", "no"]);
    t.row(vec!["file view / derived datatypes", "yes", "no"]);
    t.row(vec![
        "benchmark writer LoC (measured)".to_string(),
        ocio_loc.to_string(),
        tcio_loc.to_string(),
    ]);
    t.row(vec![
        "peak memory / per-proc data (measured)".to_string(),
        format!("{ocio_peak:.2}x"),
        format!("{tcio_peak:.2}x"),
    ]);
    t.row(vec![
        "restriction",
        "patterns expressible as MPI datatypes",
        "any POSIX-like pattern",
    ]);
    t.print();
    match t.write_csv("table3.csv") {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    println!(
        "\nexpected shape: OCIO needs more code ({ocio_loc} vs {tcio_loc} LoC) and more memory ({ocio_peak:.1}x vs {tcio_peak:.1}x the dataset)"
    );
    assert!(ocio_loc > tcio_loc, "Table III LoC claim must hold");
    assert!(ocio_peak > tcio_peak, "Table III memory claim must hold");
}
