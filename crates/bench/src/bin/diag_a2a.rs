//! Diagnostic: cost of one pairwise-exchange all-to-all vs process count,
//! isolating the collective-wall noise term. Calibration aid.
//! `--json <path>` additionally writes the points as structured JSON.

use bench::{emit_json, Args, Calib, Json};

fn main() {
    let args = Args::parse();
    let scale = args.get_u64("scale", 256);
    let per_rank_virtual = args.get_u64("bytes", 48 << 20); // 48 MB/rank
    let calib = Calib::paper(scale);
    let per_rank_real = (per_rank_virtual / scale).max(1) as usize;
    let mut points = Vec::new();
    for p in args.get_list("procs", &[64, 256, 1024]) {
        let msg = per_rank_real / p;
        let rep = mpisim::run(p, calib.sim_config_unbudgeted(), move |rk| {
            rk.barrier()?;
            let t0 = rk.now();
            let data: Vec<Vec<u8>> = (0..rk.nprocs()).map(|_| vec![0u8; msg]).collect();
            rk.alltoallv(data)?;
            rk.barrier()?;
            Ok(rk.now() - t0)
        })
        .expect("run");
        let t = rep.results[0];
        let ms_round = t / (p - 1) as f64 * 1e3;
        println!(
            "P={p}: alltoallv of {}B/rank → {:.3}s ({:.2} ms/round)",
            per_rank_real, t, ms_round
        );
        points.push(
            Json::obj()
                .with("procs", Json::num(p as f64))
                .with("bytes_per_rank", Json::num(per_rank_real as f64))
                .with("elapsed_s", Json::num(t))
                .with("ms_per_round", Json::num(ms_round)),
        );
    }
    emit_json(
        &args,
        &Json::obj()
            .with("bench", Json::str("diag_a2a"))
            .with("points", Json::Arr(points)),
    );
}
