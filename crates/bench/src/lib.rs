//! # bench — the experiment harness
//!
//! One binary per figure/table of the paper's evaluation (see the
//! per-experiment index in `DESIGN.md`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig5_scale` | Fig. 5: synthetic write/read throughput vs process count |
//! | `fig6_7_filesize` | Figs. 6–7: throughput vs file size at P=64, incl. the OCIO OOM at 48 GB |
//! | `fig9_10_art` | Figs. 9–10: ART dump/restart, TCIO vs vanilla MPI-IO |
//! | `table3_effort` | Table III + Programs 2/3: programming effort and memory comparison |
//! | `ablation_segment_size` | §IV.A: segment size vs the PFS lock granularity |
//! | `ablation_modes` | §IV.A design choices: L1 combining, lock/unlock vs fence, lazy vs eager reads |
//! | `ablation_cb` | OCIO hints: unchunked vs cb_buffer-chunked exchange, aggregator counts |
//! | `topo_sweep` | node topology sweep: ppn × {TCIO, OCIO, OCIO+intra-agg}, intra/inter byte split |
//! | `ablation_sweep` | pipelining/request-aggregation ablation: {flat, +req-agg, +pipeline, +both} × {tcio, ocio}, makespans + overlap fraction |
//! | `tenant_sweep` | multi-tenant facility: offered rate × QoS mode → aggregate + per-tenant p50/p95/p99 |
//! | `resilience_sweep` | gray-failure defense: fault intensity × {defended, undefended} → latency percentiles + defense counters |
//!
//! Microbenches for hot paths live in `benches/micro.rs` (`cargo bench -p bench`).

pub mod ablation;
pub mod calib;
pub mod perfgate;
pub mod report;
pub mod resilience;
pub mod runner;
pub mod tenant;
pub mod topo;

pub use ablation::{AblationCell, AblationMethod, AblationVariant};
pub use calib::{fmt_bytes, Calib};
pub use report::{emit_json, mbs, sparkline, write_json_file, write_json_text, Args, Json, Table};
pub use runner::{run_art, run_synth, run_traced_synth, Outcome};
pub use topo::{cell_to_json, run_cell, TopoCell, Variant};
