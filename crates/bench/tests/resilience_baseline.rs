//! Regression guard for the gray-failure defense: re-run the committed
//! `bench_results/resilience_sweep.json` grid and diff it against the
//! committed document through the perfgate tolerance policy, then assert
//! the headline claims directly on the baseline — the defended stack
//! bounds p99 under the flaky-OST plan where the undefended stack does
//! not, and the post-run rebuild drains every relocated extent.
//!
//! The sweep always runs on the serial event core, so the re-run is
//! bit-identical to the committed baseline on any machine. After an
//! intentional cost-model or defense change, regenerate with:
//!
//!   cargo run --release -p bench --bin resilience_sweep -- \
//!       --plan plans/flaky_ost.toml --json bench_results/resilience_sweep.json

use bench::resilience::{sweep_calib, sweep_to_json};
use bench::{perfgate, Json};
use chaos::FaultPlan;

/// Must match the defaults of the `resilience_sweep` binary.
const PROCS: usize = 4;
const LEN: usize = 1 << 21;
const SIZE_ACCESS: usize = 1;
const POINTS: usize = 4;
const SCALE: u64 = 1024;

fn baseline() -> Json {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../bench_results/resilience_sweep.json"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing committed baseline {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("unparseable baseline {path}: {e}"))
}

fn committed_plan() -> FaultPlan {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../plans/flaky_ost.toml");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing committed plan {path}: {e}"));
    FaultPlan::parse(&text).unwrap_or_else(|e| panic!("bad committed plan {path}: {e}"))
}

#[test]
fn sweep_matches_the_committed_baseline_within_perfgate_tolerances() {
    let baseline = baseline();
    let candidate = sweep_to_json(
        &committed_plan(),
        &sweep_calib(SCALE),
        PROCS,
        LEN,
        SIZE_ACCESS,
        POINTS,
    );
    let rep = perfgate::diff(&baseline, &candidate);
    assert!(
        rep.passed(),
        "resilience sweep regressed against bench_results/resilience_sweep.json:\n{}\
         If a cost-model or defense change is intentional, regenerate the \
         baseline with the resilience_sweep binary.",
        rep.render()
    );
}

/// The headline acceptance claim, asserted on the committed document:
/// at full fault intensity the defended stack's p99 stays within 2x of
/// its own fault-free p99 while the undefended stack exceeds 2x — the
/// gray-failure plan is strong enough to hurt, and the defenses bound
/// the damage.
#[test]
fn baseline_pins_defended_p99_within_2x_where_undefended_blows_past() {
    let baseline = baseline();
    let points = baseline.get("points").and_then(|p| p.as_arr()).unwrap();
    assert_eq!(points.len(), POINTS);
    let full = points.last().unwrap();
    assert_eq!(full.get("intensity").and_then(Json::as_f64), Some(1.0));
    let slowdown = |arm: &str| {
        full.get(arm)
            .and_then(|c| c.get("p99_slowdown"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("baseline missing {arm} p99_slowdown"))
    };
    let defended = slowdown("defended");
    let undefended = slowdown("undefended");
    assert!(
        defended <= 2.0,
        "defended p99 slowdown {defended:.2}x exceeds the 2x bound"
    );
    assert!(
        undefended > 2.0,
        "undefended p99 slowdown {undefended:.2}x no longer exceeds 2x — \
         the committed plan is too gentle to demonstrate the defense"
    );
    // And the defense actually acted: breaker tripped, writes relocated,
    // hedges fired, rebuild drained the relocation map.
    let defense = full
        .get("defended")
        .and_then(|c| c.get("defense"))
        .expect("defended cell carries defense counters");
    let leaf = |k: &str| defense.get(k).and_then(Json::as_f64).unwrap();
    assert!(leaf("breaker_opens") >= 1.0);
    assert!(leaf("degraded_writes") >= 1.0);
    assert!(leaf("hedges_issued") >= 1.0);
    assert_eq!(
        leaf("relocated_after_rebuild"),
        0.0,
        "rebuild must converge"
    );
    assert_eq!(
        leaf("rebuilt_bytes"),
        leaf("degraded_bytes"),
        "every degraded byte must migrate home"
    );
}

/// Intensity 0 is the inert plan: both arms must agree exactly (the
/// defense layer is attached but idle — the zero-cost-off contract), and
/// every defense counter must be zero.
#[test]
fn baseline_intensity_zero_arms_are_identical_and_quiet() {
    let baseline = baseline();
    let points = baseline.get("points").and_then(|p| p.as_arr()).unwrap();
    let quiet = &points[0];
    assert_eq!(quiet.get("intensity").and_then(Json::as_f64), Some(0.0));
    for leaf in ["write_s", "read_s", "p50_us", "p99_us", "p999_us"] {
        let v = |arm: &str| {
            quiet
                .get(arm)
                .and_then(|c| c.get(leaf))
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert_eq!(
            v("defended"),
            v("undefended"),
            "inert-plan {leaf} differs between arms: the defense layer is \
             not zero-cost when idle"
        );
    }
    let defense = quiet
        .get("defended")
        .and_then(|c| c.get("defense"))
        .unwrap();
    for counter in [
        "hedges_issued",
        "breaker_opens",
        "probes",
        "degraded_writes",
        "rebuilt_extents",
    ] {
        assert_eq!(
            defense.get(counter).and_then(Json::as_f64),
            Some(0.0),
            "inert-plan run must leave {counter} at zero"
        );
    }
}
