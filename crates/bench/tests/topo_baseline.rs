//! Regression guard for the topology sweep: re-run the smallest cells of
//! the committed `bench_results/baseline_topo.json` and require the
//! rendered JSON — virtual clocks included, to the digit — to appear
//! verbatim in the baseline.
//!
//! Only the single-rank cells are pinned: they are the one part of the
//! sweep whose virtual clocks are fully scheduler-independent (multi-rank
//! cells race on shared timeline reservations, so their clocks wobble in
//! the last digits run-to-run). A single-rank cell still exercises the
//! whole cost model — PFS striping and OST service, TCIO L1/L2 machinery,
//! the collective buffer path — so any calibration or cost-model change
//! shows up as a mismatch here and requires regenerating the baseline:
//!
//!   cargo run --release -p bench --bin topo_sweep -- \
//!       --out bench_results/baseline_topo.json

use bench::topo::{cell_to_json, run_cell, Variant};
use bench::Calib;

/// Must match the defaults of the `topo_sweep` binary.
const LEN: usize = 1 << 16;
const SIZE_ACCESS: usize = 1;
const SCALE: u64 = 1024;

fn baseline() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../bench_results/baseline_topo.json"
    );
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing committed baseline {path}: {e}"))
}

#[test]
fn smallest_cells_match_the_committed_baseline_exactly() {
    let baseline = baseline();
    let calib = Calib::paper(SCALE);
    for variant in Variant::ALL {
        let cell = run_cell(&calib, 1, 1, variant, LEN, SIZE_ACCESS);
        let json = cell_to_json(&cell);
        assert!(
            baseline.contains(&json),
            "{} guard cell diverged from bench_results/baseline_topo.json:\n  \
             re-ran: {json}\nIf a cost-model change is intentional, regenerate \
             the baseline with the topo_sweep binary.",
            variant.label()
        );
    }
}

#[test]
fn baseline_covers_the_sweep_grid() {
    // The committed file must keep reporting the intra/inter byte split
    // for every (procs, ppn) cell of the default grid — the sweep's
    // acceptance output.
    let baseline = baseline();
    for nprocs in [1usize, 8, 32, 128] {
        for ppn in [1usize, 4, 16] {
            if ppn > nprocs {
                continue;
            }
            for variant in ["tcio", "ocio", "ocio_intra"] {
                let prefix =
                    format!("{{\"nprocs\": {nprocs}, \"ppn\": {ppn}, \"variant\": \"{variant}\", ");
                assert!(
                    baseline.contains(&prefix),
                    "baseline is missing cell {prefix}"
                );
            }
        }
    }
    assert!(baseline.contains("\"intra_bytes\""));
    assert!(baseline.contains("\"inter_bytes\""));
}
