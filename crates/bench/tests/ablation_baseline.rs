//! Regression guard for the pipelining/request-aggregation ablation:
//! re-run the smallest cells of the committed
//! `bench_results/ablation_sweep.json` and require the rendered JSON —
//! virtual clocks included, to the digit — to appear verbatim in the
//! baseline. Also pins the headline result: at 128 ranks × 16 ppn the
//! pipelined+req-agg collective write must stay at least 20% under flat.
//!
//! Only the single-rank cells are pinned verbatim: they are the one part
//! of the sweep whose virtual clocks are fully scheduler-independent
//! (multi-rank cells race on shared timeline reservations, so their
//! clocks wobble in the last digits run-to-run). A single-rank cell
//! still exercises the whole cost model, so any calibration change
//! shows up as a mismatch here and requires regenerating the baseline:
//!
//!   cargo run --release -p bench --bin ablation_sweep -- \
//!       --out bench_results/ablation_sweep.json

use bench::ablation::{cell_to_json, run_cell, AblationMethod, AblationVariant};
use bench::Calib;

/// Must match the defaults of the `ablation_sweep` binary.
const LEN: usize = 1 << 16;
const SIZE_ACCESS: usize = 1;
const SCALE: u64 = 1024;

fn baseline() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../bench_results/ablation_sweep.json"
    );
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing committed baseline {path}: {e}"))
}

#[test]
fn smallest_cells_match_the_committed_baseline_exactly() {
    let baseline = baseline();
    let calib = Calib::paper(SCALE);
    for method in AblationMethod::ALL {
        for variant in AblationVariant::ALL {
            let cell = run_cell(&calib, 1, 1, method, variant, LEN, SIZE_ACCESS);
            let json = cell_to_json(&cell);
            assert!(
                baseline.contains(&json),
                "{}/{} guard cell diverged from bench_results/ablation_sweep.json:\n  \
                 re-ran: {json}\nIf a cost-model change is intentional, regenerate \
                 the baseline with the ablation_sweep binary.",
                method.label(),
                variant.label()
            );
        }
    }
}

#[test]
fn baseline_covers_the_sweep_grid() {
    let baseline = baseline();
    for nprocs in [1usize, 8, 32, 128] {
        for ppn in [1usize, 4, 16] {
            if ppn > nprocs {
                continue;
            }
            for method in ["tcio", "ocio"] {
                for variant in ["flat", "req_agg", "pipeline", "both"] {
                    let prefix = format!(
                        "{{\"nprocs\": {nprocs}, \"ppn\": {ppn}, \
                         \"method\": \"{method}\", \"variant\": \"{variant}\", "
                    );
                    assert!(
                        baseline.contains(&prefix),
                        "baseline is missing cell {prefix}"
                    );
                }
            }
        }
    }
    assert!(baseline.contains("\"overlap_frac\""));
    assert!(baseline.contains("\"hidden_s\""));
}

/// Parse `field` out of the baseline cell matching `(nprocs, ppn, method,
/// variant)` — the cells are one JSON object per line with a fixed field
/// order, so a line scan suffices (no JSON parser in the dev-deps).
fn baseline_field(
    baseline: &str,
    nprocs: usize,
    ppn: usize,
    method: &str,
    variant: &str,
    field: &str,
) -> f64 {
    let prefix = format!(
        "{{\"nprocs\": {nprocs}, \"ppn\": {ppn}, \
         \"method\": \"{method}\", \"variant\": \"{variant}\", "
    );
    let line = baseline
        .lines()
        .find(|l| l.trim_start().starts_with(&prefix))
        .unwrap_or_else(|| panic!("baseline cell {prefix} not found"));
    let key = format!("\"{field}\": ");
    let start = line
        .find(&key)
        .unwrap_or_else(|| panic!("no {field} in {line}"))
        + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("numeric baseline field")
}

#[test]
fn committed_headline_pins_the_pipelined_req_agg_win() {
    // The acceptance bar, read from the committed file itself so CI can
    // gate it without re-running the (expensive) 128-rank cells: at
    // 128 ranks × 16 ppn the pipelined+req-agg collective write beats
    // flat by >=20%, and only pipelined cells report overlap.
    let baseline = baseline();
    let flat_w = baseline_field(&baseline, 128, 16, "ocio", "flat", "write_s");
    let both_w = baseline_field(&baseline, 128, 16, "ocio", "both", "write_s");
    assert!(
        both_w <= 0.8 * flat_w,
        "committed baseline lost the headline win: both {both_w}s vs flat {flat_w}s"
    );
    let flat_ov = baseline_field(&baseline, 128, 16, "ocio", "flat", "overlap_frac");
    let both_ov = baseline_field(&baseline, 128, 16, "ocio", "both", "overlap_frac");
    assert_eq!(flat_ov, 0.0, "flat cells must report zero overlap");
    assert!(both_ov > 0.0, "pipelined cells must report overlap");
}
