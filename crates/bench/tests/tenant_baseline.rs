//! Regression guard for the multi-tenant facility sweep: re-run the
//! committed `bench_results/tenant_sweep.json` grid and diff it against
//! the committed document through the perfgate tolerance policy
//! (makespans and latency percentiles lower-better at 5%, throughput
//! leaves higher-better, counters with discrete slack).
//!
//! The facility always runs on the serial event core, so the re-run is
//! bit-identical to the committed baseline on any machine; the perfgate
//! tolerances only leave room for *intentional* cost-model drift small
//! enough not to matter. After an intentional change, regenerate with:
//!
//!   cargo run --release -p bench --bin tenant_sweep -- \
//!       --json bench_results/tenant_sweep.json

use bench::tenant::{self, SWEEP_SEED};
use bench::{perfgate, Json};
use facility::QosMode;

/// Must match the defaults of the `tenant_sweep` binary.
const JOBS: usize = 2;
const RATES: [usize; 3] = [10, 80, 640];
const MODES: [QosMode; 2] = [QosMode::FairShare, QosMode::Fifo];

fn baseline() -> Json {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../bench_results/tenant_sweep.json"
    );
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing committed baseline {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("unparseable baseline {path}: {e}"))
}

#[test]
fn sweep_matches_the_committed_baseline_within_perfgate_tolerances() {
    let baseline = baseline();
    let candidate = tenant::sweep_to_json(JOBS, &RATES, &MODES, SWEEP_SEED);
    let rep = perfgate::diff(&baseline, &candidate);
    assert!(
        rep.passed(),
        "tenant sweep regressed against bench_results/tenant_sweep.json:\n{}\
         If a cost-model or facility change is intentional, regenerate the \
         baseline with the tenant_sweep binary.",
        rep.render()
    );
}

#[test]
fn baseline_covers_every_rate_mode_and_tenant() {
    let baseline = baseline();
    let points = baseline.get("points").and_then(|p| p.as_arr()).unwrap();
    assert_eq!(points.len(), RATES.len());
    for (point, rate) in points.iter().zip(RATES) {
        assert_eq!(
            point.get("rate_hz").and_then(|r| r.as_f64()),
            Some(rate as f64)
        );
        for mode in MODES {
            let cell = point.get(tenant::mode_label(mode)).unwrap_or_else(|| {
                panic!(
                    "baseline point rate {rate} missing mode {}",
                    tenant::mode_label(mode)
                )
            });
            let tenants = cell.get("tenants").unwrap();
            for spec in tenant::fleet(JOBS, 0.0) {
                let t = tenants
                    .get(&spec.name)
                    .unwrap_or_else(|| panic!("baseline missing tenant {}", spec.name));
                for leaf in ["throughput_mbs", "p50_ms", "p95_ms", "p99_ms"] {
                    assert!(
                        t.get(leaf).and_then(|v| v.as_f64()).is_some(),
                        "tenant {} missing {leaf}",
                        spec.name
                    );
                }
            }
        }
    }
}
