//! Drop-in subset of the `rand` crate API, vendored locally because the
//! build environment has no registry access.
//!
//! Only the surface this workspace uses is provided: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random`]. The generator
//! is xoshiro256++ (Blackman & Vigna) seeded through SplitMix64 — small,
//! fast, and statistically strong enough for the workloads' Box–Muller
//! sampling and property tests. Streams are fully deterministic per seed
//! but are **not** bit-compatible with the upstream `rand::StdRng`
//! (ChaCha12); nothing in this repo depends on the upstream streams.

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of primitive values, mirroring `rand`'s
/// `Rng::random::<T>()` entry point.
pub trait RngExt {
    fn next_u64(&mut self) -> u64;

    fn random<T: Uniform>(&mut self) -> T {
        T::from_rng(self)
    }
}

/// Types that can be drawn uniformly from a 64-bit generator. The
/// equivalent of `rand::distr::StandardUniform` support.
pub trait Uniform {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u64 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for bool {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with the standard 53-bit mantissa construction.
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    /// Uniform in `[0, 1)` with the 24-bit mantissa construction.
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
            sumsq += u * u;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }
}
