//! Two-phase collective I/O — the paper's OCIO baseline, as implemented by
//! ROMIO (§III.A).
//!
//! `write_all_at`:
//!
//! 1. every rank resolves its view into file extents and the communicator
//!    agrees on the aggregate file domain `[min, max)` (allreduce);
//! 2. the domain is split evenly across the aggregators;
//! 3. **data exchange phase**: every rank sends each aggregator the pieces
//!    of its request that fall inside that aggregator's domain — an
//!    all-to-all burst of Isend/Irecv traffic (this is the traffic pattern
//!    the paper blames for OCIO's collapse at scale);
//! 4. **I/O phase**: each aggregator assembles its domain in a *collective
//!    buffer* (counted against the rank's simulated memory budget — the
//!    source of the Fig. 6/7 out-of-memory failure) and issues large
//!    contiguous file-system writes.
//!
//! `read_all_at` runs the phases in reverse, with an extra request-exchange
//! round so aggregators know what to read.
//!
//! `cb_buffer = None` reproduces the paper's observed behaviour (the whole
//! domain is buffered at once — their memory accounting in §V.B.2b implies
//! an unchunked exchange). `cb_buffer = Some(bytes)` enables ROMIO-style
//! multi-round chunking and is exercised by the ablation benches.

use crate::error::{IoError, Result};
use crate::extents::ExtentSet;
use crate::file::File;
use mpisim::{Phase, Rank, ReduceOp};

/// Tuning knobs of the two-phase implementation (ROMIO hints).
#[derive(Debug, Clone, Default)]
pub struct CollectiveConfig {
    /// Number of aggregator ranks (`cb_nodes`); `None` = all ranks.
    pub cb_nodes: Option<usize>,
    /// Collective buffer size per aggregator; `None` = unchunked (whole
    /// domain in one round — the paper's behaviour).
    pub cb_buffer: Option<u64>,
    /// Round file-domain boundaries up to this alignment (e.g. the PFS
    /// stripe size, per Liao & Choudhary's lock-boundary partitioning).
    pub align: Option<u64>,
    /// Two-level exchange (Kang et al.): pre-aggregate pieces on a node
    /// leader over the cheap intra-node links so only one rank per node
    /// participates in the inter-node all-to-all burst. A no-op (falls
    /// back to the flat burst) when the simulation has no topology.
    pub intra_agg: bool,
    /// Full intra-node *request* aggregation (Kang et al., going beyond
    /// `intra_agg`'s opaque byte forwarding): node leaders decode their
    /// members' offset–length lists, merge them per aggregator with
    /// adjacent-extent coalescing, and ship one merged list per
    /// (node, aggregator) pair — see [`crate::reqagg`]. Classic two-phase
    /// (`write_all_at`/`read_all_at`) merges semantically; the view-based
    /// and partitioned paths treat this flag as `intra_agg` (their wire
    /// formats are already per-interval, not per-extent). Falls back to
    /// the flat burst without a topology.
    pub req_agg: bool,
    /// Pipelined (double-buffered) rounds: an aggregator submits round
    /// k's file I/O, *keeps the completion as a deferred handle*, and
    /// runs round k+1's exchange while the OSTs service round k —
    /// settling the handle only when both collective buffers are in
    /// flight (depth 2) or the round loop ends. File bytes are identical
    /// to the serialized path (the storage layer applies data at
    /// submission); only the clock attribution changes. Combine with
    /// `cb_buffer` — a single unchunked round has nothing to overlap.
    pub pipeline: bool,
    /// Adaptive hedged reads: aggregators route window reads through
    /// [`pfs::Pfs::read_at_hedged`], with the per-collective hedge budget
    /// reset at each read phase via [`pfs::Pfs::hedge_scope_begin`]. A
    /// no-op unless the PFS has a health layer attached (and bit-identical
    /// to the plain path until the healthy-latency histograms warm up or a
    /// breaker opens), so the default `false` only matters for
    /// unconfigured stacks.
    pub hedged_reads: bool,
}

/// Pipeline depth of the round loop: double buffering, matching the two
/// collective buffers an aggregator holds in flight.
const PIPELINE_DEPTH: usize = 2;

/// The data-exchange step shared by all two-phase paths: the flat
/// all-to-all burst, or the two-level (intra-node aggregated) variant.
pub(crate) fn exchange(
    rank: &mut Rank,
    cfg: &CollectiveConfig,
    payloads: Vec<Vec<u8>>,
) -> Result<Vec<Vec<u8>>> {
    if cfg.intra_agg || cfg.req_agg {
        // `req_agg` on the paths that don't merge semantically (view-based,
        // partitioned) still gets the leader-forwarded two-level exchange.
        Ok(rank.alltoallv_burst_hier(payloads)?)
    } else {
        Ok(rank.alltoallv_burst(payloads)?)
    }
}

/// Does this collective use the semantic request-aggregation exchange?
/// (Needs a topology to have node leaders at all.)
fn use_reqagg(rank: &Rank, cfg: &CollectiveConfig) -> bool {
    cfg.req_agg && rank.topology().is_some_and(|t| !t.is_trivial())
}

/// Serialize a piece list `[(file_off, len, payload)]` for the exchange.
pub(crate) fn encode_pieces(pieces: &[(u64, &[u8])]) -> Vec<u8> {
    let header = 4 + pieces.len() * 12;
    let data: usize = pieces.iter().map(|(_, d)| d.len()).sum();
    let mut out = Vec::with_capacity(header + data);
    out.extend_from_slice(&(pieces.len() as u32).to_le_bytes());
    for (off, d) in pieces {
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&(d.len() as u32).to_le_bytes());
    }
    for (_, d) in pieces {
        out.extend_from_slice(d);
    }
    out
}

/// Decode a piece list; returns `(off, payload)` views into `buf`.
pub(crate) fn decode_pieces(buf: &[u8]) -> Result<Vec<(u64, &[u8])>> {
    if buf.is_empty() {
        return Ok(Vec::new());
    }
    let bad = || IoError::Usage("malformed exchange payload".into());
    if buf.len() < 4 {
        return Err(bad());
    }
    let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let mut meta = Vec::with_capacity(n);
    let mut pos = 4usize;
    for _ in 0..n {
        if pos + 12 > buf.len() {
            return Err(bad());
        }
        let off = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
        let len = u32::from_le_bytes(buf[pos + 8..pos + 12].try_into().unwrap()) as usize;
        meta.push((off, len));
        pos += 12;
    }
    let mut out = Vec::with_capacity(n);
    for (off, len) in meta {
        if pos + len > buf.len() {
            return Err(bad());
        }
        out.push((off, &buf[pos..pos + len]));
        pos += len;
    }
    Ok(out)
}

/// Serialize a request list `[(file_off, len)]` (reads, phase 1).
pub(crate) fn encode_requests(reqs: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + reqs.len() * 12);
    out.extend_from_slice(&(reqs.len() as u32).to_le_bytes());
    for &(off, len) in reqs {
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&(len as u32).to_le_bytes());
    }
    out
}

pub(crate) fn decode_requests(buf: &[u8]) -> Result<Vec<(u64, u64)>> {
    if buf.is_empty() {
        return Ok(Vec::new());
    }
    let bad = || IoError::Usage("malformed request payload".into());
    if buf.len() < 4 {
        return Err(bad());
    }
    let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if buf.len() != 4 + n * 12 {
        return Err(bad());
    }
    let mut out = Vec::with_capacity(n);
    let mut pos = 4;
    for _ in 0..n {
        let off = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
        let len = u32::from_le_bytes(buf[pos + 8..pos + 12].try_into().unwrap()) as u64;
        out.push((off, len));
        pos += 12;
    }
    Ok(out)
}

/// File-domain geometry shared by reads and writes.
pub(crate) struct Domains {
    pub(crate) gmin: u64,
    pub(crate) naggs: usize,
    /// The rank serving each aggregator index. Normally the evenly-spread
    /// `i * nprocs / naggs` mapping; under fault injection, ranks with a
    /// stall window ahead are excluded (graceful degradation), so the set
    /// can be sparser than the spread.
    pub(crate) agg_ranks: Vec<usize>,
    pub(crate) dsize: u64,
    pub(crate) gmax: u64,
    pub(crate) rounds: u64,
    pub(crate) round_size: u64,
}

impl Domains {
    /// Aggregator index → its rank.
    pub(crate) fn agg_rank(&self, i: usize, _nprocs: usize) -> usize {
        self.agg_ranks[i]
    }

    /// Which aggregator index (if any) does this rank serve as?
    pub(crate) fn my_agg_index(&self, rank: usize, _nprocs: usize) -> Option<usize> {
        self.agg_ranks.iter().position(|&r| r == rank)
    }

    /// Aggregator i's domain `[start, end)`.
    pub(crate) fn domain(&self, i: usize) -> (u64, u64) {
        let start = self.gmin + i as u64 * self.dsize;
        let end = (start + self.dsize).min(self.gmax);
        (start.min(self.gmax), end)
    }

    /// Aggregator i's window for round r.
    pub(crate) fn window(&self, i: usize, r: u64) -> (u64, u64) {
        let (ds, de) = self.domain(i);
        let ws = ds + r * self.round_size;
        let we = (ws + self.round_size).min(de);
        (ws.min(de), we)
    }
}

pub(crate) fn compute_domains(
    rank: &mut Rank,
    local_min: u64,
    local_max: u64,
    cfg: &CollectiveConfig,
) -> Result<Option<Domains>> {
    let gmin = rank.allreduce_u64(local_min, ReduceOp::Min)?;
    let gmax = rank.allreduce_u64(local_max, ReduceOp::Max)?;
    if gmin >= gmax {
        return Ok(None); // nothing to do anywhere
    }
    let nprocs = rank.nprocs();
    let naggs = cfg.cb_nodes.unwrap_or(nprocs).clamp(1, nprocs);
    let mut agg_ranks: Vec<usize> = match rank.topology() {
        // Node-aware placement: interleave nodes so the first
        // `num_nodes` aggregators land one per node — aggregator NICs
        // are the bottleneck of the I/O phase, so doubling up on a node
        // before every node has one wastes links.
        Some(topo) => {
            let mut order = topo.interleaved_order();
            order.truncate(naggs);
            order
        }
        // Topology-blind: the classic evenly-spread ROMIO mapping.
        None => (0..naggs).map(|i| i * nprocs / naggs).collect(),
    };
    // Graceful degradation: drop aggregators with a stall window still
    // ahead, and re-elect around ranks the fault plan will crash-stop —
    // an aggregator that dies mid-drain takes every rank's staged data
    // with it. Both allreduces above are symmetric (equal payloads on
    // every rank), so all ranks exit with *identical* clocks — evaluating
    // the pure-function stall/crash queries here yields the same shrunk
    // set everywhere without extra communication. If every candidate is a
    // straggler, keep the original set (someone has to do the I/O).
    if let Some(engine) = rank.chaos() {
        let t = rank.now();
        let healthy: Vec<usize> = agg_ranks
            .iter()
            .copied()
            .filter(|&r| !engine.stall_ahead(r, t) && !engine.crash_ahead(r))
            .collect();
        if !healthy.is_empty() {
            agg_ranks = healthy;
        }
    }
    let naggs = agg_ranks.len();
    let mut dsize = (gmax - gmin).div_ceil(naggs as u64);
    if let Some(a) = cfg.align {
        if a > 0 {
            dsize = dsize.div_ceil(a) * a;
        }
    }
    let round_size = cfg.cb_buffer.unwrap_or(dsize).max(1).min(dsize);
    let rounds = dsize.div_ceil(round_size);
    Ok(Some(Domains {
        gmin,
        naggs,
        agg_ranks,
        dsize,
        gmax,
        rounds,
        round_size,
    }))
}

/// Collective write: all ranks must call, each with its own (possibly
/// empty) data at a view-stream `offset`.
pub fn write_all_at(
    rank: &mut Rank,
    file: &mut File,
    offset: u64,
    data: &[u8],
    cfg: &CollectiveConfig,
) -> Result<()> {
    if !file.mode().writable() {
        return Err(IoError::Usage("file is not open for writing".into()));
    }
    let extents = file.view().map_range(offset, data.len() as u64);
    // Stream cursor for each extent, to slice `data`.
    let mut cursors = Vec::with_capacity(extents.len());
    let mut acc = 0u64;
    for &(_, len) in &extents {
        cursors.push(acc);
        acc += len;
    }
    let local_min = extents.first().map_or(u64::MAX, |&(o, _)| o);
    let local_max = extents.last().map_or(0, |&(o, l)| o + l);

    let Some(doms) = compute_domains(rank, local_min, local_max, cfg)? else {
        rank.barrier()?;
        return Ok(());
    };
    let nprocs = rank.nprocs();
    let my_agg = doms.my_agg_index(rank.rank(), nprocs);
    let reqagg = use_reqagg(rank, cfg);

    // Deferred I/O completions of in-flight rounds (pipelined mode only).
    // The collective buffer's memory guard rides along: both buffers stay
    // charged against the rank's budget until their round is settled.
    let mut inflight: std::collections::VecDeque<(mpisim::DeferredIo, mpisim::MemGuard)> =
        std::collections::VecDeque::new();

    for r in 0..doms.rounds {
        // Double buffering: before opening round r's exchange, settle the
        // oldest in-flight write so at most PIPELINE_DEPTH collective
        // buffers exist at once.
        while inflight.len() >= PIPELINE_DEPTH {
            let (h, _cb) = inflight.pop_front().expect("non-empty inflight");
            rank.io_complete(h);
        }
        // Build per-destination piece payloads for this round.
        let mut payloads: Vec<Vec<u8>> = vec![Vec::new(); nprocs];
        for i in 0..doms.naggs {
            let (ws, we) = doms.window(i, r);
            if ws >= we {
                continue;
            }
            let mut pieces: Vec<(u64, &[u8])> = Vec::new();
            for (k, &(eoff, elen)) in extents.iter().enumerate() {
                let s = eoff.max(ws);
                let e = (eoff + elen).min(we);
                if s < e {
                    let dstart = (cursors[k] + (s - eoff)) as usize;
                    pieces.push((s, &data[dstart..dstart + (e - s) as usize]));
                }
            }
            if !pieces.is_empty() {
                payloads[doms.agg_rank(i, nprocs)] = encode_pieces(&pieces);
            }
        }
        // Data exchange phase: the all-to-all burst (or the leader-merged
        // request-aggregation exchange).
        let exchanged = if reqagg {
            crate::reqagg::exchange_pieces(rank, &doms.agg_ranks, payloads)?
        } else {
            exchange(rank, cfg, payloads)?
        };

        // I/O phase (aggregators only).
        if let Some(i) = my_agg {
            let (ws, we) = doms.window(i, r);
            if ws < we {
                let win_len = (we - ws) as usize;
                let cb = rank.alloc(win_len as u64)?; // collective buffer
                rank.note_mem_peak();
                let mut buf = vec![0u8; win_len];
                let mut dirty = ExtentSet::new();
                for payload in &exchanged {
                    for (off, bytes) in decode_pieces(payload)? {
                        let at = (off - ws) as usize;
                        buf[at..at + bytes.len()].copy_from_slice(bytes);
                        rank.charge_memcpy(bytes.len() as u64);
                        dirty.insert(off, bytes.len() as u64);
                    }
                }
                let io_start = rank.now();
                let mut written = 0u64;
                let mut done = rank.now();
                for &(off, len) in dirty.runs() {
                    let at = (off - ws) as usize;
                    let pfs = file.pfs().clone();
                    let fid = file.file_id();
                    let t = crate::retry::pfs_retry(rank, |rk| {
                        pfs.write_at(fid, rk.rank(), off, &buf[at..at + len as usize], rk.now())
                    })?;
                    done = done.max(t);
                    written += len;
                    rank.stats.io_writes += 1;
                    rank.stats.io_write_bytes += len;
                }
                if cfg.pipeline {
                    // The PFS applied the bytes at submission; only the
                    // completion time is outstanding. Keep it as a handle
                    // so round r+1's exchange overlaps the OST service.
                    inflight.push_back((
                        mpisim::DeferredIo {
                            name: "ocio_io_pipe",
                            submitted: io_start,
                            done,
                            bytes: written,
                        },
                        cb,
                    ));
                } else {
                    drop(cb);
                    rank.with_phase(Phase::Io, |rk| rk.sync_to(done));
                    rank.trace_mark("ocio_io", Phase::Io, io_start, written);
                }
            }
        }
    }
    // Drain the pipeline before the closing barrier so every rank's clock
    // covers its own I/O completions.
    while let Some((h, _cb)) = inflight.pop_front() {
        rank.io_complete(h);
    }
    rank.barrier()?;
    Ok(())
}

/// Collective read: all ranks must call, each filling its own (possibly
/// empty) buffer from a view-stream `offset`.
pub fn read_all_at(
    rank: &mut Rank,
    file: &mut File,
    offset: u64,
    buf: &mut [u8],
    cfg: &CollectiveConfig,
) -> Result<()> {
    if !file.mode().readable() {
        return Err(IoError::Usage("file is not open for reading".into()));
    }
    let extents = file.view().map_range(offset, buf.len() as u64);
    let mut cursors = Vec::with_capacity(extents.len());
    let mut acc = 0u64;
    for &(_, len) in &extents {
        cursors.push(acc);
        acc += len;
    }
    let local_min = extents.first().map_or(u64::MAX, |&(o, _)| o);
    let local_max = extents.last().map_or(0, |&(o, l)| o + l);

    let Some(doms) = compute_domains(rank, local_min, local_max, cfg)? else {
        rank.barrier()?;
        return Ok(());
    };
    let nprocs = rank.nprocs();
    let my_agg = doms.my_agg_index(rank.rank(), nprocs);
    let reqagg = use_reqagg(rank, cfg);

    // Per-round request builder: payloads per destination rank plus the
    // (buf_cursor, len) slots the responses will fill, in request order.
    let build_round = |r: u64| -> (Vec<Vec<u8>>, FillPlan) {
        let mut requests: Vec<Vec<u8>> = vec![Vec::new(); nprocs];
        let mut fill_plan: FillPlan = vec![Vec::new(); nprocs];
        for i in 0..doms.naggs {
            let (ws, we) = doms.window(i, r);
            if ws >= we {
                continue;
            }
            let mut reqs: Vec<(u64, u64)> = Vec::new();
            let a = doms.agg_rank(i, nprocs);
            for (k, &(eoff, elen)) in extents.iter().enumerate() {
                let s = eoff.max(ws);
                let e = (eoff + elen).min(we);
                if s < e {
                    reqs.push((s, e - s));
                    fill_plan[a].push(((cursors[k] + (s - eoff)) as usize, (e - s) as usize));
                }
            }
            if !reqs.is_empty() {
                requests[a] = encode_requests(&reqs);
            }
        }
        (requests, fill_plan)
    };

    if !cfg.pipeline {
        for r in 0..doms.rounds {
            // Phase 1: send each aggregator the extents we need from its
            // window.
            let (requests, fill_plan) = build_round(r);
            let (incoming, session) = if reqagg {
                let (inc, s) = crate::reqagg::exchange_requests(rank, &doms.agg_ranks, requests)?;
                (inc, Some(s))
            } else {
                (exchange(rank, cfg, requests)?, None)
            };

            // Phase 2: aggregators read their window and answer.
            let mut responses: Vec<Vec<u8>> = vec![Vec::new(); nprocs];
            if let Some(i) = my_agg {
                let (ws, we) = doms.window(i, r);
                if ws < we {
                    // Union of everything requested in this window.
                    let mut wanted = ExtentSet::new();
                    let mut per_rank_reqs: Vec<Vec<(u64, u64)>> = Vec::with_capacity(nprocs);
                    for payload in &incoming {
                        let reqs = decode_requests(payload)?;
                        for &(o, l) in &reqs {
                            wanted.insert(o, l);
                        }
                        per_rank_reqs.push(reqs);
                    }
                    if !wanted.is_empty() {
                        let win_len = (we - ws) as usize;
                        let _cb = rank.alloc(win_len as u64)?;
                        rank.note_mem_peak();
                        let mut wbuf = vec![0u8; win_len];
                        let io_start = rank.now();
                        let mut read = 0u64;
                        let mut done = rank.now();
                        if cfg.hedged_reads {
                            file.pfs().hedge_scope_begin(rank.rank());
                        }
                        for &(off, len) in wanted.runs() {
                            let at = (off - ws) as usize;
                            let pfs = file.pfs().clone();
                            let fid = file.file_id();
                            let dst = &mut wbuf[at..at + len as usize];
                            let t = crate::retry::pfs_retry(rank, |rk| {
                                if cfg.hedged_reads {
                                    pfs.read_at_hedged(fid, rk.rank(), off, dst, rk.now())
                                } else {
                                    pfs.read_at(fid, rk.rank(), off, dst, rk.now())
                                }
                            })?;
                            done = done.max(t);
                            read += len;
                            rank.stats.io_reads += 1;
                            rank.stats.io_read_bytes += len;
                        }
                        rank.with_phase(Phase::Io, |rk| rk.sync_to(done));
                        rank.trace_mark("ocio_read", Phase::Io, io_start, read);
                        fill_responses(rank, &mut responses, &per_rank_reqs, ws, &wbuf);
                    }
                }
            }
            let answers = match session {
                Some(s) => crate::reqagg::exchange_responses(rank, s, responses)?,
                None => exchange(rank, cfg, responses)?,
            };
            scatter_answers(buf, &doms, nprocs, &fill_plan, &answers);
        }
        rank.barrier()?;
        return Ok(());
    }

    // Pipelined rounds: the aggregator submits round r's window read as a
    // deferred handle, runs round r+1's *request* exchange while the OSTs
    // service it, then settles the handle and answers round r. The first
    // round's requests are exchanged before the loop.
    struct PendingRead {
        ws: u64,
        wbuf: Vec<u8>,
        per_rank_reqs: Vec<Vec<(u64, u64)>>,
        handle: mpisim::DeferredIo,
        _cb: mpisim::MemGuard,
    }
    let (req0, fill0) = build_round(0);
    let (mut incoming, mut session) = if reqagg {
        let (inc, s) = crate::reqagg::exchange_requests(rank, &doms.agg_ranks, req0)?;
        (inc, Some(s))
    } else {
        (exchange(rank, cfg, req0)?, None)
    };
    let mut fill = fill0;
    for r in 0..doms.rounds {
        // Submit this round's window read (aggregators only). The PFS
        // delivers the bytes into `wbuf` at submission; the completion
        // time stays outstanding in the handle.
        let mut pending: Option<PendingRead> = None;
        if let Some(i) = my_agg {
            let (ws, we) = doms.window(i, r);
            if ws < we {
                let mut wanted = ExtentSet::new();
                let mut per_rank_reqs: Vec<Vec<(u64, u64)>> = Vec::with_capacity(nprocs);
                for payload in &incoming {
                    let reqs = decode_requests(payload)?;
                    for &(o, l) in &reqs {
                        wanted.insert(o, l);
                    }
                    per_rank_reqs.push(reqs);
                }
                if !wanted.is_empty() {
                    let win_len = (we - ws) as usize;
                    let cb = rank.alloc(win_len as u64)?;
                    rank.note_mem_peak();
                    let mut wbuf = vec![0u8; win_len];
                    let io_start = rank.now();
                    let mut read = 0u64;
                    let mut done = rank.now();
                    if cfg.hedged_reads {
                        file.pfs().hedge_scope_begin(rank.rank());
                    }
                    for &(off, len) in wanted.runs() {
                        let at = (off - ws) as usize;
                        let pfs = file.pfs().clone();
                        let fid = file.file_id();
                        let dst = &mut wbuf[at..at + len as usize];
                        let t = crate::retry::pfs_retry(rank, |rk| {
                            if cfg.hedged_reads {
                                pfs.read_at_hedged(fid, rk.rank(), off, dst, rk.now())
                            } else {
                                pfs.read_at(fid, rk.rank(), off, dst, rk.now())
                            }
                        })?;
                        done = done.max(t);
                        read += len;
                        rank.stats.io_reads += 1;
                        rank.stats.io_read_bytes += len;
                    }
                    pending = Some(PendingRead {
                        ws,
                        wbuf,
                        per_rank_reqs,
                        handle: mpisim::DeferredIo {
                            name: "ocio_read_pipe",
                            submitted: io_start,
                            done,
                            bytes: read,
                        },
                        _cb: cb,
                    });
                }
            }
        }
        // Prefetch round r+1's request exchange while the read is in
        // flight.
        let next = if r + 1 < doms.rounds {
            let (reqs, fp) = build_round(r + 1);
            let (inc, s) = if reqagg {
                let (inc, s) = crate::reqagg::exchange_requests(rank, &doms.agg_ranks, reqs)?;
                (inc, Some(s))
            } else {
                (exchange(rank, cfg, reqs)?, None)
            };
            Some((inc, s, fp))
        } else {
            None
        };
        // Settle the read, then build and exchange this round's answers.
        let mut responses: Vec<Vec<u8>> = vec![Vec::new(); nprocs];
        if let Some(p) = pending {
            rank.io_complete(p.handle);
            fill_responses(rank, &mut responses, &p.per_rank_reqs, p.ws, &p.wbuf);
        }
        let answers = match session.take() {
            Some(s) => crate::reqagg::exchange_responses(rank, s, responses)?,
            None => exchange(rank, cfg, responses)?,
        };
        scatter_answers(buf, &doms, nprocs, &fill, &answers);
        if let Some((inc, s, fp)) = next {
            incoming = inc;
            session = s;
            fill = fp;
        }
    }
    rank.barrier()?;
    Ok(())
}

/// Per destination rank, the `(buf_cursor, len)` slots a round's read
/// responses will fill, in request order.
type FillPlan = Vec<Vec<(usize, usize)>>;

/// Slice each source's requested extents out of the window buffer, in
/// request order (the order the source's scatter plan expects).
fn fill_responses(
    rank: &mut Rank,
    responses: &mut [Vec<u8>],
    per_rank_reqs: &[Vec<(u64, u64)>],
    ws: u64,
    wbuf: &[u8],
) {
    for (src, reqs) in per_rank_reqs.iter().enumerate() {
        if reqs.is_empty() {
            continue;
        }
        let total: u64 = reqs.iter().map(|&(_, l)| l).sum();
        let mut resp = Vec::with_capacity(total as usize);
        for &(off, len) in reqs {
            let at = (off - ws) as usize;
            resp.extend_from_slice(&wbuf[at..at + len as usize]);
        }
        rank.charge_memcpy(total);
        responses[src] = resp;
    }
}

/// Scatter exchanged answers into the caller's buffer per the fill plan.
fn scatter_answers(
    buf: &mut [u8],
    doms: &Domains,
    nprocs: usize,
    fill_plan: &[Vec<(usize, usize)>],
    answers: &[Vec<u8>],
) {
    for i in 0..doms.naggs {
        let a = doms.agg_rank(i, nprocs);
        let plan = &fill_plan[a];
        if plan.is_empty() {
            continue;
        }
        let payload = &answers[a];
        let mut pos = 0usize;
        for &(cursor, len) in plan {
            buf[cursor..cursor + len].copy_from_slice(&payload[pos..pos + len]);
            pos += len;
        }
        debug_assert_eq!(pos, payload.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{File, Mode};
    use mpisim::{Datatype, Named, SimConfig};
    use pfs::{Pfs, PfsConfig};
    use std::sync::Arc;

    fn to_mpi(e: IoError) -> mpisim::MpiError {
        match e {
            IoError::Mpi(m) => m,
            other => mpisim::MpiError::InvalidDatatype(other.to_string()),
        }
    }

    #[test]
    fn codec_roundtrip() {
        let a = [1u8, 2, 3];
        let b = [9u8];
        let enc = encode_pieces(&[(10, &a), (99, &b)]);
        let dec = decode_pieces(&enc).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[0], (10, &a[..]));
        assert_eq!(dec[1], (99, &b[..]));
        assert!(decode_pieces(&[1, 2]).is_err());

        let reqs = [(5u64, 7u64), (100, 1)];
        let enc = encode_requests(&reqs);
        assert_eq!(decode_requests(&enc).unwrap(), reqs.to_vec());
        assert!(decode_requests(&[0, 0]).is_err());
    }

    fn run_interleaved(
        nprocs: usize,
        len_array: usize,
        cfg: CollectiveConfig,
    ) -> (Arc<Pfs>, Vec<u8>) {
        run_interleaved_sim(nprocs, len_array, cfg, SimConfig::default())
    }

    fn run_interleaved_sim(
        nprocs: usize,
        len_array: usize,
        cfg: CollectiveConfig,
        sim: SimConfig,
    ) -> (Arc<Pfs>, Vec<u8>) {
        // The paper's Fig. 2 pattern: block b of the file belongs to rank
        // b % P; rank r writes blocks of 12 bytes filled with (r+1).
        let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(nprocs, sim, move |rk| {
            let mut f = File::open(rk, &fs2, "/c", Mode::WriteOnly).map_err(to_mpi)?;
            let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
            let ftype =
                Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone()).commit();
            f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                .map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; 12 * len_array];
            write_all_at(rk, &mut f, 0, &data, &cfg).map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/c").unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        (fs, bytes)
    }

    fn check_interleaved(bytes: &[u8], nprocs: usize, len_array: usize) {
        assert_eq!(bytes.len(), 12 * nprocs * len_array);
        for block in 0..nprocs * len_array {
            let expect = (block % nprocs) as u8 + 1;
            assert!(
                bytes[block * 12..(block + 1) * 12]
                    .iter()
                    .all(|&b| b == expect),
                "block {block} corrupted"
            );
        }
    }

    #[test]
    fn write_all_produces_interleaved_file() {
        let (_, bytes) = run_interleaved(4, 8, CollectiveConfig::default());
        check_interleaved(&bytes, 4, 8);
    }

    #[test]
    fn write_all_with_fewer_aggregators() {
        let cfg = CollectiveConfig {
            cb_nodes: Some(2),
            ..Default::default()
        };
        let (_, bytes) = run_interleaved(4, 8, cfg);
        check_interleaved(&bytes, 4, 8);
    }

    #[test]
    fn write_all_chunked_rounds() {
        let cfg = CollectiveConfig {
            cb_buffer: Some(64), // tiny rounds force multi-round exchange
            ..Default::default()
        };
        let (_, bytes) = run_interleaved(4, 8, cfg);
        check_interleaved(&bytes, 4, 8);
    }

    #[test]
    fn write_all_stripe_aligned_domains() {
        let cfg = CollectiveConfig {
            align: Some(1 << 20),
            ..Default::default()
        };
        let (_, bytes) = run_interleaved(4, 8, cfg);
        check_interleaved(&bytes, 4, 8);
    }

    #[test]
    fn two_level_exchange_with_topology_is_byte_identical() {
        let flat = run_interleaved(8, 6, CollectiveConfig::default()).1;
        for ppn in [2, 4] {
            let sim = SimConfig {
                topology: Some(mpisim::Topology::blocked(8, ppn)),
                ..Default::default()
            };
            let cfg = CollectiveConfig {
                intra_agg: true,
                ..Default::default()
            };
            let (_, bytes) = run_interleaved_sim(8, 6, cfg, sim);
            assert_eq!(bytes, flat, "ppn={ppn} diverged from the flat burst");
        }
    }

    fn run_interleaved_report(
        nprocs: usize,
        len_array: usize,
        cfg: CollectiveConfig,
        sim: SimConfig,
    ) -> (Vec<u8>, mpisim::SimReport<()>) {
        let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, sim, move |rk| {
            let mut f = File::open(rk, &fs2, "/c", Mode::WriteOnly).map_err(to_mpi)?;
            let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
            let ftype =
                Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone()).commit();
            f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                .map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; 12 * len_array];
            write_all_at(rk, &mut f, 0, &data, &cfg).map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/c").unwrap();
        (fs.snapshot_file(fid).unwrap(), rep)
    }

    #[test]
    fn pipelined_chunked_write_is_byte_identical_and_overlaps() {
        let flat = run_interleaved(
            4,
            8,
            CollectiveConfig {
                cb_buffer: Some(64),
                ..Default::default()
            },
        )
        .1;
        let cfg = CollectiveConfig {
            cb_buffer: Some(64),
            pipeline: true,
            ..Default::default()
        };
        let (bytes, rep) = run_interleaved_report(4, 8, cfg, SimConfig::default());
        assert_eq!(bytes, flat, "pipelining changed the file contents");
        let hidden = rep.aggregate_stats().io_overlap;
        assert!(
            hidden > 0.0,
            "multi-round pipelined write hid no I/O time (io_overlap={hidden})"
        );
    }

    #[test]
    fn pipelined_single_round_still_correct() {
        // Nothing to overlap (one round), but the drain path must still
        // settle the lone deferred handle.
        let cfg = CollectiveConfig {
            pipeline: true,
            ..Default::default()
        };
        let (_, bytes) = run_interleaved(4, 8, cfg);
        check_interleaved(&bytes, 4, 8);
    }

    #[test]
    fn pipelined_read_roundtrips() {
        let nprocs = 4;
        let len_array = 8;
        let (fs, _) = run_interleaved(nprocs, len_array, CollectiveConfig::default());
        let fs2 = Arc::clone(&fs);
        let cfg = CollectiveConfig {
            cb_buffer: Some(64),
            pipeline: true,
            ..Default::default()
        };
        let rep = mpisim::run(nprocs, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/c", Mode::ReadOnly).map_err(to_mpi)?;
            let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
            let ftype =
                Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone()).commit();
            f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                .map_err(to_mpi)?;
            let mut buf = vec![0u8; 12 * len_array];
            read_all_at(rk, &mut f, 0, &mut buf, &cfg).map_err(to_mpi)?;
            Ok(buf)
        })
        .unwrap();
        for (r, buf) in rep.results.iter().enumerate() {
            assert!(
                buf.iter().all(|&b| b == r as u8 + 1),
                "rank {r} read back foreign data under pipelining"
            );
        }
        assert!(rep.aggregate_stats().io_overlap > 0.0);
    }

    #[test]
    fn req_agg_write_is_byte_identical() {
        let flat = run_interleaved(8, 6, CollectiveConfig::default()).1;
        for ppn in [2, 4] {
            let sim = SimConfig {
                topology: Some(mpisim::Topology::blocked(8, ppn)),
                ..Default::default()
            };
            let cfg = CollectiveConfig {
                req_agg: true,
                cb_nodes: Some(2),
                ..Default::default()
            };
            let (_, bytes) = run_interleaved_sim(8, 6, cfg, sim);
            assert_eq!(
                bytes, flat,
                "ppn={ppn} req-agg diverged from the flat burst"
            );
        }
    }

    #[test]
    fn req_agg_pipelined_chunked_write_is_byte_identical() {
        let flat = run_interleaved(
            8,
            6,
            CollectiveConfig {
                cb_buffer: Some(96),
                ..Default::default()
            },
        )
        .1;
        let sim = SimConfig {
            topology: Some(mpisim::Topology::blocked(8, 4)),
            ..Default::default()
        };
        let cfg = CollectiveConfig {
            cb_buffer: Some(96),
            req_agg: true,
            pipeline: true,
            ..Default::default()
        };
        let (_, bytes) = run_interleaved_sim(8, 6, cfg, sim);
        assert_eq!(
            bytes, flat,
            "req-agg + pipeline diverged from the flat burst"
        );
    }

    #[test]
    fn req_agg_read_roundtrips() {
        let nprocs = 8;
        let len_array = 6;
        let (fs, _) = run_interleaved(nprocs, len_array, CollectiveConfig::default());
        for (pipeline, cb_buffer) in [(false, None), (false, Some(96)), (true, Some(96))] {
            let fs2 = Arc::clone(&fs);
            let sim = SimConfig {
                topology: Some(mpisim::Topology::blocked(8, 4)),
                ..Default::default()
            };
            let cfg = CollectiveConfig {
                cb_nodes: Some(2),
                cb_buffer,
                req_agg: true,
                pipeline,
                ..Default::default()
            };
            let rep = mpisim::run(nprocs, sim, move |rk| {
                let mut f = File::open(rk, &fs2, "/c", Mode::ReadOnly).map_err(to_mpi)?;
                let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
                let ftype =
                    Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone())
                        .commit();
                f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                    .map_err(to_mpi)?;
                let mut buf = vec![0u8; 12 * len_array];
                read_all_at(rk, &mut f, 0, &mut buf, &cfg).map_err(to_mpi)?;
                Ok(buf)
            })
            .unwrap();
            for (r, buf) in rep.results.iter().enumerate() {
                assert!(
                    buf.iter().all(|&b| b == r as u8 + 1),
                    "rank {r} read foreign data (pipeline={pipeline}, cb={cb_buffer:?})"
                );
            }
        }
    }

    #[test]
    fn req_agg_intra_node_overwrite_keeps_rank_order() {
        // Ranks 0 and 1 share a node and both write offset 0; MPI leaves
        // overlap order undefined, but our merge mirrors the flat burst's
        // rank-index order: the higher rank's bytes win.
        for req_agg in [false, true] {
            let fs = Pfs::new(4, PfsConfig::default()).unwrap();
            let fs2 = Arc::clone(&fs);
            let sim = SimConfig {
                topology: Some(mpisim::Topology::blocked(4, 2)),
                ..Default::default()
            };
            let cfg = CollectiveConfig {
                req_agg,
                cb_nodes: Some(1),
                ..Default::default()
            };
            mpisim::run(4, sim, move |rk| {
                let mut f = File::open(rk, &fs2, "/ow", Mode::WriteOnly).map_err(to_mpi)?;
                let data = if rk.rank() < 2 {
                    vec![rk.rank() as u8 + 1; 8]
                } else {
                    Vec::new()
                };
                write_all_at(rk, &mut f, 0, &data, &cfg).map_err(to_mpi)?;
                Ok(())
            })
            .unwrap();
            let fid = fs.open("/ow").unwrap();
            let bytes = fs.snapshot_file(fid).unwrap();
            assert!(
                bytes.iter().all(|&b| b == 2),
                "req_agg={req_agg}: expected rank 1's bytes to win, got {bytes:?}"
            );
        }
    }

    #[test]
    fn intra_agg_without_topology_falls_back_to_flat() {
        let cfg = CollectiveConfig {
            intra_agg: true,
            cb_nodes: Some(2),
            ..Default::default()
        };
        let (_, bytes) = run_interleaved(4, 8, cfg);
        check_interleaved(&bytes, 4, 8);
    }

    #[test]
    fn aggregators_spread_one_per_node_first() {
        let sim = SimConfig {
            topology: Some(mpisim::Topology::blocked(8, 4)),
            ..Default::default()
        };
        let rep = mpisim::run(8, sim, move |rk| {
            let cfg = CollectiveConfig {
                cb_nodes: Some(3),
                ..Default::default()
            };
            let r = rk.rank() as u64;
            let doms = compute_domains(rk, r * 10, r * 10 + 10, &cfg)
                .map_err(to_mpi)?
                .unwrap();
            Ok(doms.agg_ranks)
        })
        .unwrap();
        for aggs in &rep.results {
            // Nodes {0..4} and {4..8}: leaders 0 and 4 first, then the
            // second member of node 0 — never two on one node while
            // another node is empty (blind mapping would pick [0, 2, 5]).
            assert_eq!(aggs, &vec![0, 4, 1]);
        }
    }

    #[test]
    fn read_all_roundtrips() {
        let nprocs = 4;
        let len_array = 8;
        let (fs, _) = run_interleaved(nprocs, len_array, CollectiveConfig::default());
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/c", Mode::ReadOnly).map_err(to_mpi)?;
            let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
            let ftype =
                Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone()).commit();
            f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                .map_err(to_mpi)?;
            let mut buf = vec![0u8; 12 * len_array];
            read_all_at(rk, &mut f, 0, &mut buf, &CollectiveConfig::default()).map_err(to_mpi)?;
            Ok(buf)
        })
        .unwrap();
        for (r, buf) in rep.results.iter().enumerate() {
            assert!(
                buf.iter().all(|&b| b == r as u8 + 1),
                "rank {r} read back foreign data"
            );
        }
    }

    #[test]
    fn read_all_chunked_roundtrips() {
        let nprocs = 3;
        let len_array = 5;
        let (fs, _) = run_interleaved(nprocs, len_array, CollectiveConfig::default());
        let fs2 = Arc::clone(&fs);
        let cfg = CollectiveConfig {
            cb_buffer: Some(40),
            cb_nodes: Some(2),
            ..Default::default()
        };
        let rep = mpisim::run(nprocs, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/c", Mode::ReadOnly).map_err(to_mpi)?;
            let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
            let ftype =
                Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone()).commit();
            f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                .map_err(to_mpi)?;
            let mut buf = vec![0u8; 12 * len_array];
            read_all_at(rk, &mut f, 0, &mut buf, &cfg).map_err(to_mpi)?;
            Ok(buf)
        })
        .unwrap();
        for (r, buf) in rep.results.iter().enumerate() {
            assert!(buf.iter().all(|&b| b == r as u8 + 1));
        }
    }

    #[test]
    fn empty_participants_are_fine() {
        // Ranks 2..4 contribute nothing but still participate.
        let fs = Pfs::new(4, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(4, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/e", Mode::WriteOnly).map_err(to_mpi)?;
            let data = if rk.rank() < 2 {
                vec![rk.rank() as u8 + 1; 8]
            } else {
                Vec::new()
            };
            write_all_at(
                rk,
                &mut f,
                rk.rank() as u64 * 8,
                &data,
                &CollectiveConfig::default(),
            )
            .map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/e").unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        assert_eq!(bytes.len(), 16);
        assert!(bytes[0..8].iter().all(|&b| b == 1));
        assert!(bytes[8..16].iter().all(|&b| b == 2));
    }

    #[test]
    fn all_empty_collective_is_a_noop() {
        let fs = Pfs::new(2, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(2, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/n", Mode::WriteOnly).map_err(to_mpi)?;
            write_all_at(rk, &mut f, 0, &[], &CollectiveConfig::default()).map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/n").unwrap();
        assert_eq!(fs.len(fid).unwrap(), 0);
    }

    #[test]
    fn aggregator_buffer_is_memory_accounted() {
        // With a tight memory budget, the unchunked collective must fail
        // with a simulated OOM — the mechanism behind Fig. 6/7's missing
        // OCIO point at 48 GB.
        let fs = Pfs::new(2, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let sim = SimConfig {
            mem_budget: Some(100), // bytes; domain buffer will exceed this
            ..Default::default()
        };
        let err = mpisim::run(2, sim, move |rk| {
            let mut f = File::open(rk, &fs2, "/oom", Mode::WriteOnly).map_err(to_mpi)?;
            let data = vec![7u8; 200];
            write_all_at(
                rk,
                &mut f,
                rk.rank() as u64 * 200,
                &data,
                &CollectiveConfig::default(),
            )
            .map_err(to_mpi)?;
            Ok(())
        })
        .unwrap_err();
        match err {
            mpisim::SimError::RankFailed { error, .. } => {
                assert!(matches!(error, mpisim::MpiError::OutOfMemory { .. }))
            }
            other => panic!("expected OOM, got {other}"),
        }
    }

    #[test]
    fn chunked_mode_fits_in_tight_memory() {
        // Same workload as above, but cb_buffer-chunked exchange stays
        // within budget — the ablation claim.
        let fs = Pfs::new(2, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let sim = SimConfig {
            mem_budget: Some(100),
            ..Default::default()
        };
        let cfg = CollectiveConfig {
            cb_buffer: Some(64),
            ..Default::default()
        };
        mpisim::run(2, sim, move |rk| {
            let mut f = File::open(rk, &fs2, "/fit", Mode::WriteOnly).map_err(to_mpi)?;
            let data = vec![7u8; 200];
            write_all_at(rk, &mut f, rk.rank() as u64 * 200, &data, &cfg).map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/fit").unwrap();
        assert_eq!(fs.len(fid).unwrap(), 400);
        assert!(fs.snapshot_file(fid).unwrap().iter().all(|&b| b == 7));
    }

    #[test]
    fn sparse_domains_do_not_write_holes() {
        // Two ranks write 8 bytes each, 1000 bytes apart; the aggregator
        // buffers must not flush untouched gap bytes over existing data.
        let fs = Pfs::new(2, PfsConfig::default()).unwrap();
        let fid = fs.create("/sparse").unwrap();
        // Pre-fill the gap with sentinel bytes.
        fs.write_at(fid, 0, 0, &vec![0xAAu8; 1008], 0.0).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(2, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/sparse", Mode::ReadWrite).map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; 8];
            write_all_at(
                rk,
                &mut f,
                rk.rank() as u64 * 1000,
                &data,
                &CollectiveConfig::default(),
            )
            .map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        assert!(bytes[0..8].iter().all(|&b| b == 1));
        assert!(bytes[8..1000].iter().all(|&b| b == 0xAA), "gap clobbered");
        assert!(bytes[1000..1008].iter().all(|&b| b == 2));
    }
}
