//! Retry-with-exponential-backoff for transient file-system faults.
//!
//! When a fault plan puts an OST into outage, `pfs` refuses accesses with
//! [`pfs::PfsError::Transient`] instead of failing the job. This module is
//! the single policy point that turns those refusals into bounded retries:
//! the rank backs off in *virtual* time (so retry storms are visible in
//! the makespan and the trace, not hidden in wall clock), waits at least
//! until the fault's own `retry_after` hint, and gives up after the
//! [`chaos::RetryPolicy`] budget is exhausted. Every wait is attributed to
//! the I/O phase and recorded as an `io_retry` span, keeping the PR-1
//! conservation invariant intact.

use crate::error::{IoError, Result};
use mpisim::{Phase, Rank};

/// Run a pfs operation, retrying transient failures with exponential
/// backoff in virtual time. `op` is re-invoked with the rank so each
/// attempt reads a fresh `rank.now()`. The policy comes from the attached
/// chaos engine (or defaults when a transient error appears without one).
pub fn pfs_retry<T>(rank: &mut Rank, mut op: impl FnMut(&mut Rank) -> pfs::Result<T>) -> Result<T> {
    let mut attempt = 1u32;
    loop {
        match op(rank) {
            Ok(v) => {
                if attempt > 1 {
                    rank.metrics.observe_retry_attempts(attempt as u64);
                }
                return Ok(v);
            }
            Err(e @ pfs::PfsError::Transient { retry_after, .. }) => {
                let policy = rank
                    .chaos()
                    .map(|engine| engine.retry())
                    .unwrap_or_default();
                if attempt >= policy.max_attempts {
                    return Err(IoError::Fs(e));
                }
                let start = rank.now();
                let wake = retry_after.max(rank.now() + policy.backoff(attempt));
                rank.with_phase(Phase::Io, |rk| rk.sync_to(wake));
                rank.stats.io_retries += 1;
                rank.trace_mark("io_retry", Phase::Io, start, 0);
                attempt += 1;
            }
            Err(e) => return Err(IoError::Fs(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::SimConfig;
    use pfs::{Pfs, PfsConfig};
    use std::sync::Arc;

    #[test]
    fn retries_until_outage_lifts_and_counts() {
        let engine = chaos::FaultPlan::new(3)
            .with(chaos::Fault::OstOutage {
                ost: 0,
                from: 0.0,
                until: 0.5,
            })
            .build()
            .unwrap();
        let fs = Pfs::new(
            1,
            PfsConfig {
                num_osts: 1,
                stripe_count: 1,
                ..Default::default()
            },
        )
        .unwrap();
        fs.attach_chaos(Arc::clone(&engine)).unwrap();
        let fid = fs.create("/f").unwrap();
        let cfg = SimConfig {
            chaos: Some(engine),
            ..Default::default()
        };
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(1, cfg, move |rk| {
            let t = pfs_retry(rk, |rk| fs2.write_at(fid, 0, 0, &[7u8; 16], rk.now()))
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            rk.with_phase(Phase::Io, |rk| rk.sync_to(t));
            Ok(rk.stats.io_retries)
        })
        .unwrap();
        assert!(rep.results[0] >= 1, "at least one retry happened");
        assert!(rep.makespan >= 0.5, "backoff waits for the outage to lift");
        assert_eq!(fs.snapshot_file(fid).unwrap(), vec![7u8; 16]);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_transient_error() {
        // Chained outage windows: each `retry_after` hint lands inside the
        // next window, so the helper must give up with the typed error
        // once the attempt budget is spent, not loop forever.
        let mut plan = chaos::FaultPlan::new(3).with_retry(chaos::RetryPolicy {
            max_attempts: 3,
            base_backoff: 1e-3,
            max_backoff: 1e-2,
        });
        for k in 0..8 {
            plan = plan.with(chaos::Fault::OstOutage {
                ost: 0,
                from: k as f64,
                until: (k + 1) as f64,
            });
        }
        let engine = plan.build().unwrap();
        let fs = Pfs::new(
            1,
            PfsConfig {
                num_osts: 1,
                stripe_count: 1,
                ..Default::default()
            },
        )
        .unwrap();
        fs.attach_chaos(Arc::clone(&engine)).unwrap();
        let fid = fs.create("/f").unwrap();
        let cfg = SimConfig {
            chaos: Some(engine),
            ..Default::default()
        };
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(1, cfg, move |rk| {
            let out = pfs_retry(rk, |rk| fs2.write_at(fid, 0, 0, &[7u8; 16], rk.now()));
            Ok(matches!(
                out,
                Err(IoError::Fs(pfs::PfsError::Transient { .. }))
            ))
        })
        .unwrap();
        assert!(rep.results[0]);
    }
}
