//! The MPI-IO file handle: collective open/close, file views, seeking, and
//! *independent* (non-collective) data access.
//!
//! Independent `read_at`/`write_at` is the "vanilla MPI-IO" baseline of the
//! paper's §V.C: each call resolves the view and issues one file-system
//! request per mapped extent, with no cross-process coordination — exactly
//! the behaviour that collapses when an application emits thousands of tiny
//! noncontiguous accesses.

use crate::error::{IoError, Result};
use crate::sieve::{gather_into_span, scatter_from_span, SieveConfig};
use crate::view::FileView;
use mpisim::{Committed, Phase, Rank};
use pfs::{FileId, Pfs};
use std::sync::Arc;

/// Open mode (subset of `MPI_MODE_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Read-only; the file must exist.
    ReadOnly,
    /// Create (or truncate) for writing.
    WriteOnly,
    /// Read and write; created if absent.
    ReadWrite,
}

impl Mode {
    pub fn readable(self) -> bool {
        !matches!(self, Mode::WriteOnly)
    }

    pub fn writable(self) -> bool {
        !matches!(self, Mode::ReadOnly)
    }
}

/// Seek origin (subset of `MPI_SEEK_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    Set,
    Cur,
    End,
}

/// An open MPI-IO file on one rank.
pub struct File {
    pfs: Arc<Pfs>,
    fid: FileId,
    view: FileView,
    /// Individual file pointer, in *view stream* bytes.
    pos: u64,
    mode: Mode,
    /// Data-sieving policy for independent noncontiguous access (ROMIO's
    /// `ind_*_buffer_size` hints); `None` = one request per extent.
    sieve: Option<SieveConfig>,
}

impl std::fmt::Debug for File {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("File")
            .field("fid", &self.fid)
            .field("pos", &self.pos)
            .field("mode", &self.mode)
            .field("identity_view", &self.view.is_identity())
            .finish_non_exhaustive()
    }
}

impl File {
    /// Collective open. All ranks must call with the same path and mode.
    pub fn open(rank: &mut Rank, pfs: &Arc<Pfs>, path: &str, mode: Mode) -> Result<File> {
        // Rank 0 resolves/creates the file; the barrier both synchronizes
        // (MPI_File_open is collective) and orders the namespace operation.
        let fid = match mode {
            Mode::ReadOnly => {
                rank.barrier()?;
                pfs.open(path)?
            }
            Mode::WriteOnly | Mode::ReadWrite => {
                let fid = pfs.open_or_create(path)?;
                rank.barrier()?;
                fid
            }
        };
        Ok(File {
            pfs: Arc::clone(pfs),
            fid,
            view: FileView::contiguous(),
            pos: 0,
            mode,
            sieve: None,
        })
    }

    /// Non-collective open (`MPI_File_open` on `MPI_COMM_SELF`, or a
    /// group-scoped open for partitioned collective I/O): no barrier, so
    /// independent groups don't accidentally synchronize through the
    /// namespace. Creation is idempotent across racing ranks.
    pub fn open_independent(
        rank: &mut Rank,
        pfs: &Arc<Pfs>,
        path: &str,
        mode: Mode,
    ) -> Result<File> {
        let _ = &rank; // opening charges no modeled time beyond the FS RPCs
        let fid = match mode {
            Mode::ReadOnly => pfs.open(path)?,
            Mode::WriteOnly | Mode::ReadWrite => pfs.open_or_create(path)?,
        };
        Ok(File {
            pfs: Arc::clone(pfs),
            fid,
            view: FileView::contiguous(),
            pos: 0,
            mode,
            sieve: None,
        })
    }

    pub fn mode(&self) -> Mode {
        self.mode
    }

    pub fn file_id(&self) -> FileId {
        self.fid
    }

    pub fn pfs(&self) -> &Arc<Pfs> {
        &self.pfs
    }

    pub fn view(&self) -> &FileView {
        &self.view
    }

    /// Install a file view (collective, resets the file pointer) — the
    /// `MPI_File_set_view` step the paper's Program 2 must perform.
    pub fn set_view(
        &mut self,
        rank: &mut Rank,
        disp: u64,
        etype: &Committed,
        filetype: &Committed,
    ) -> Result<()> {
        let view = FileView::new(disp, etype, filetype)?;
        rank.barrier()?;
        self.view = view;
        self.pos = 0;
        Ok(())
    }

    /// Current individual file pointer (view-stream bytes).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Move the individual file pointer.
    pub fn seek(&mut self, offset: i64, whence: Whence) -> Result<()> {
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => self.pos as i64,
            Whence::End => {
                let file_len = self.pfs.len(self.fid)?;
                self.view.stream_len_for_file(file_len) as i64
            }
        };
        let target = base + offset;
        if target < 0 {
            return Err(IoError::Usage(format!(
                "seek to negative position {target}"
            )));
        }
        self.pos = target as u64;
        Ok(())
    }

    fn check_writable(&self) -> Result<()> {
        if !self.mode.writable() {
            return Err(IoError::Usage("file is not open for writing".into()));
        }
        Ok(())
    }

    fn check_readable(&self) -> Result<()> {
        if !self.mode.readable() {
            return Err(IoError::Usage("file is not open for reading".into()));
        }
        Ok(())
    }

    /// Enable (or disable) data sieving for independent noncontiguous
    /// access — the optimization of the paper's reference \[7\]
    /// ("Data Sieving and Collective I/O in ROMIO").
    pub fn set_sieving(&mut self, cfg: Option<SieveConfig>) {
        self.sieve = cfg;
    }

    /// Independent write of raw bytes at a view-stream offset: one file
    /// system request per mapped extent, or a sieved read-modify-write of
    /// the spanning range when the sieving policy applies.
    pub fn write_at(&mut self, rank: &mut Rank, offset: u64, data: &[u8]) -> Result<()> {
        self.check_writable()?;
        rank.advance(rank.net_config().api_call_overhead);
        let extents = self.view.map_range(offset, data.len() as u64);
        if let Some(cfg) = self.sieve {
            if cfg.should_sieve(&extents) {
                return self.write_sieved(rank, &extents, data);
            }
        }
        let start = rank.now();
        let mut cursor = 0usize;
        let mut written = 0u64;
        let mut done = rank.now();
        for (file_off, len) in extents {
            let pfs = &self.pfs;
            let fid = self.fid;
            let slice = &data[cursor..cursor + len as usize];
            let t = crate::retry::pfs_retry(rank, |rk| {
                pfs.write_at(fid, rk.rank(), file_off, slice, rk.now())
            })?;
            done = done.max(t);
            cursor += len as usize;
            written += len;
            rank.stats.io_writes += 1;
            rank.stats.io_write_bytes += len;
        }
        rank.with_phase(Phase::Io, |rk| rk.sync_to(done));
        rank.trace_mark("indep_write", Phase::Io, start, written);
        Ok(())
    }

    /// Sieved write: an *atomic* read-modify-write of the extents'
    /// spanning range as one large request pair. Atomicity comes from
    /// [`pfs::Pfs::write_rmw`], standing in for the whole-span file lock a
    /// real data-sieving implementation must hold — without it, concurrent
    /// writers whose spans overlap would resurrect stale gap bytes.
    fn write_sieved(&mut self, rank: &mut Rank, extents: &[(u64, u64)], data: &[u8]) -> Result<()> {
        let (start, span_len) = SieveConfig::span(extents);
        let t0 = rank.now();
        let _mem = rank.alloc(span_len)?;
        let pfs = &self.pfs;
        let fid = self.fid;
        let t = crate::retry::pfs_retry(rank, |rk| {
            pfs.write_rmw(
                fid,
                rk.rank(),
                start,
                span_len,
                &mut |span| gather_into_span(start, span, extents, data),
                rk.now(),
            )
        })?;
        rank.charge_memcpy(data.len() as u64);
        rank.stats.io_reads += 1;
        rank.stats.io_writes += 1;
        rank.stats.io_write_bytes += span_len;
        rank.with_phase(Phase::Io, |rk| rk.sync_to(t));
        rank.trace_mark("sieve_rmw", Phase::Io, t0, span_len);
        Ok(())
    }

    /// Independent read of raw bytes at a view-stream offset, sieving the
    /// spanning range when the policy applies.
    pub fn read_at(&mut self, rank: &mut Rank, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_readable()?;
        rank.advance(rank.net_config().api_call_overhead);
        let extents = self.view.map_range(offset, buf.len() as u64);
        if let Some(cfg) = self.sieve {
            if cfg.should_sieve(&extents) {
                return self.read_sieved(rank, &extents, buf);
            }
        }
        let start = rank.now();
        let mut cursor = 0usize;
        let mut read = 0u64;
        let mut done = rank.now();
        for (file_off, len) in extents {
            let pfs = &self.pfs;
            let fid = self.fid;
            let dst = &mut buf[cursor..cursor + len as usize];
            let t = crate::retry::pfs_retry(rank, |rk| {
                pfs.read_at(fid, rk.rank(), file_off, dst, rk.now())
            })?;
            done = done.max(t);
            cursor += len as usize;
            read += len;
            rank.stats.io_reads += 1;
            rank.stats.io_read_bytes += len;
        }
        rank.with_phase(Phase::Io, |rk| rk.sync_to(done));
        rank.trace_mark("indep_read", Phase::Io, start, read);
        Ok(())
    }

    /// Sieved read: one large request for the spanning range, then pick
    /// the wanted bytes out of it.
    fn read_sieved(
        &mut self,
        rank: &mut Rank,
        extents: &[(u64, u64)],
        buf: &mut [u8],
    ) -> Result<()> {
        let (start, span_len) = SieveConfig::span(extents);
        let t0 = rank.now();
        let _mem = rank.alloc(span_len)?;
        let mut span = vec![0u8; span_len as usize];
        let pfs = &self.pfs;
        let fid = self.fid;
        let t = crate::retry::pfs_retry(rank, |rk| {
            pfs.read_at(fid, rk.rank(), start, &mut span, rk.now())
        })?;
        rank.stats.io_reads += 1;
        rank.stats.io_read_bytes += span_len;
        scatter_from_span(start, &span, extents, buf);
        rank.charge_memcpy(buf.len() as u64);
        rank.with_phase(Phase::Io, |rk| rk.sync_to(t));
        rank.trace_mark("sieve_read", Phase::Io, t0, span_len);
        Ok(())
    }

    /// Independent write at the individual file pointer.
    pub fn write(&mut self, rank: &mut Rank, data: &[u8]) -> Result<()> {
        let pos = self.pos;
        self.write_at(rank, pos, data)?;
        self.pos += data.len() as u64;
        Ok(())
    }

    /// Independent read at the individual file pointer.
    pub fn read(&mut self, rank: &mut Rank, buf: &mut [u8]) -> Result<()> {
        let pos = self.pos;
        self.read_at(rank, pos, buf)?;
        self.pos += buf.len() as u64;
        Ok(())
    }

    /// Typed independent write: packs `count` instances of `dtype` from
    /// `memory` (charging memcpy time) and writes the stream.
    pub fn write_typed_at(
        &mut self,
        rank: &mut Rank,
        offset: u64,
        memory: &[u8],
        dtype: &Committed,
        count: usize,
    ) -> Result<()> {
        if dtype.is_contiguous() {
            let bytes = dtype.size() * count;
            return self.write_at(rank, offset, &memory[..bytes]);
        }
        let packed = dtype.pack(memory, count)?;
        rank.charge_memcpy(packed.len() as u64);
        self.write_at(rank, offset, &packed)
    }

    /// Typed independent read: reads the stream and unpacks into `memory`.
    pub fn read_typed_at(
        &mut self,
        rank: &mut Rank,
        offset: u64,
        memory: &mut [u8],
        dtype: &Committed,
        count: usize,
    ) -> Result<()> {
        if dtype.is_contiguous() {
            let bytes = dtype.size() * count;
            return self.read_at(rank, offset, &mut memory[..bytes]);
        }
        let mut stream = vec![0u8; dtype.size() * count];
        self.read_at(rank, offset, &mut stream)?;
        rank.charge_memcpy(stream.len() as u64);
        dtype.unpack(&stream, memory, count)?;
        Ok(())
    }

    /// Collective close (barrier; the simulated PFS needs no flush).
    pub fn close(self, rank: &mut Rank) -> Result<()> {
        rank.barrier()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{Datatype, Named, SimConfig};
    use pfs::PfsConfig;

    fn with_world<T: Send>(
        n: usize,
        f: impl Fn(&mut Rank, &Arc<Pfs>) -> Result<T> + Sync,
    ) -> Vec<T> {
        let fs = Pfs::new(n, PfsConfig::default()).unwrap();
        let rep = mpisim::run(n, SimConfig::default(), |rk| {
            f(rk, &fs).map_err(|e| match e {
                IoError::Mpi(m) => m,
                other => mpisim::MpiError::InvalidDatatype(other.to_string()),
            })
        })
        .unwrap();
        rep.results
    }

    #[test]
    fn open_write_read_close_roundtrip() {
        with_world(2, |rk, fs| {
            let mut f = File::open(rk, fs, "/data", Mode::ReadWrite)?;
            let me = rk.rank() as u8;
            f.write_at(rk, rk.rank() as u64 * 4, &[me; 4])?;
            rk.barrier()?;
            let mut buf = [0u8; 8];
            f.read_at(rk, 0, &mut buf)?;
            assert_eq!(&buf[0..4], &[0, 0, 0, 0]);
            assert_eq!(&buf[4..8], &[1, 1, 1, 1]);
            f.close(rk)?;
            Ok(())
        });
    }

    #[test]
    fn open_missing_readonly_fails() {
        let fs = Pfs::new(1, PfsConfig::default()).unwrap();
        let err = mpisim::run(1, SimConfig::default(), |rk| {
            match File::open(rk, &fs, "/missing", Mode::ReadOnly) {
                Err(IoError::Fs(pfs::PfsError::NotFound(_))) => Ok(()),
                other => panic!("expected NotFound, got {other:?}"),
            }
        });
        assert!(err.is_ok());
    }

    #[test]
    fn mode_enforcement() {
        with_world(1, |rk, fs| {
            let mut f = File::open(rk, fs, "/w", Mode::WriteOnly)?;
            let mut buf = [0u8; 1];
            assert!(matches!(f.read_at(rk, 0, &mut buf), Err(IoError::Usage(_))));
            f.write_at(rk, 0, &[1])?;
            let mut g = File::open(rk, fs, "/w", Mode::ReadOnly)?;
            assert!(matches!(g.write_at(rk, 0, &[1]), Err(IoError::Usage(_))));
            g.read_at(rk, 0, &mut buf)?;
            assert_eq!(buf[0], 1);
            Ok(())
        });
    }

    #[test]
    fn seek_set_cur_end() {
        with_world(1, |rk, fs| {
            let mut f = File::open(rk, fs, "/s", Mode::ReadWrite)?;
            f.write(rk, &[1, 2, 3, 4, 5])?;
            assert_eq!(f.position(), 5);
            f.seek(0, Whence::Set)?;
            assert_eq!(f.position(), 0);
            f.seek(2, Whence::Cur)?;
            assert_eq!(f.position(), 2);
            f.seek(-1, Whence::End)?;
            assert_eq!(f.position(), 4);
            let mut b = [0u8; 1];
            f.read(rk, &mut b)?;
            assert_eq!(b[0], 5);
            assert!(f.seek(-10, Whence::Set).is_err());
            Ok(())
        });
    }

    #[test]
    fn view_routes_interleaved_writes() {
        // Two ranks, the paper's Fig. 2 layout via independent writes.
        let fs = Pfs::new(2, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(2, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/v", Mode::WriteOnly)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
            let ftype = Datatype::vector(3, 1, 2, etype.datatype().clone()).commit();
            f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            let me = rk.rank() as u8 + 1;
            f.write_at(rk, 0, &[me; 36])
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            rk.barrier()?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/v").unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        assert_eq!(bytes.len(), 72);
        for block in 0..6 {
            let expect = (block % 2) as u8 + 1;
            assert!(
                bytes[block * 12..(block + 1) * 12]
                    .iter()
                    .all(|&b| b == expect),
                "block {block} should belong to rank {}",
                expect - 1
            );
        }
    }

    #[test]
    fn typed_write_packs_noncontiguous_memory() {
        with_world(1, |rk, fs| {
            let mut f = File::open(rk, fs, "/t", Mode::ReadWrite)?;
            // Memory: 4 ints at stride 2 (every other int).
            let t = Datatype::vector(4, 1, 2, Datatype::named(Named::Int)).commit();
            let memory: Vec<u8> = (0..32u8).collect();
            f.write_typed_at(rk, 0, &memory, &t, 1)?;
            let mut got = vec![0u8; 16];
            f.read_at(rk, 0, &mut got)?;
            let expect: Vec<u8> = vec![
                0, 1, 2, 3, // int 0
                8, 9, 10, 11, // int 2
                16, 17, 18, 19, // int 4
                24, 25, 26, 27, // int 6
            ];
            assert_eq!(got, expect);
            // And read back through the same type into a fresh buffer.
            let mut mem2 = vec![0u8; 32];
            f.read_typed_at(rk, 0, &mut mem2, &t, 1)?;
            for i in (0..8).step_by(2) {
                assert_eq!(&mem2[i * 4..i * 4 + 4], &memory[i * 4..i * 4 + 4]);
            }
            Ok(())
        });
    }

    #[test]
    fn sieved_write_preserves_gap_bytes() {
        // Interleaved view: the rank's extents have gaps owned by others;
        // the sieved read-modify-write must not clobber them.
        let fs = Pfs::new(1, PfsConfig::default()).unwrap();
        let fid = fs.create("/sv").unwrap();
        fs.write_at(fid, 0, 0, &[0xAAu8; 96], 0.0).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(1, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/sv", Mode::ReadWrite)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            let etype = Datatype::contiguous(8, Datatype::named(Named::Byte)).commit();
            // Blocks of 8 bytes, every other one (stride 2).
            let ftype = Datatype::vector(6, 1, 2, etype.datatype().clone()).commit();
            f.set_view(rk, 0, &etype, &ftype)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            f.set_sieving(Some(crate::sieve::SieveConfig {
                buffer_size: 1 << 20,
                min_extents: 2,
                min_density: 0.0,
            }));
            f.write_at(rk, 0, &[0x55u8; 48])
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            // One read RPC + one write RPC for the whole span.
            assert_eq!(rk.stats.io_writes, 1, "sieving must coalesce writes");
            Ok(())
        })
        .unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        for block in 0..12 {
            let expect = if block % 2 == 0 { 0x55 } else { 0xAA };
            assert!(
                bytes[block * 8..(block + 1) * 8]
                    .iter()
                    .all(|&b| b == expect),
                "block {block} corrupted"
            );
        }
    }

    #[test]
    fn sieved_read_matches_unsieved() {
        let fs = Pfs::new(1, PfsConfig::default()).unwrap();
        let fid = fs.create("/sr").unwrap();
        let data: Vec<u8> = (0..96u8).collect();
        fs.write_at(fid, 0, 0, &data, 0.0).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(1, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/sr", Mode::ReadOnly)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            let etype = Datatype::contiguous(8, Datatype::named(Named::Byte)).commit();
            let ftype = Datatype::vector(6, 1, 2, etype.datatype().clone()).commit();
            f.set_view(rk, 0, &etype, &ftype)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            let mut plain = vec![0u8; 48];
            f.read_at(rk, 0, &mut plain)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            let rpcs_unsieved = rk.stats.io_reads;
            f.set_sieving(Some(crate::sieve::SieveConfig {
                buffer_size: 1 << 20,
                min_extents: 2,
                min_density: 0.0,
            }));
            let mut sieved = vec![0u8; 48];
            f.read_at(rk, 0, &mut sieved)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            let rpcs_sieved = rk.stats.io_reads - rpcs_unsieved;
            assert_eq!(plain, sieved, "sieving must not change data");
            assert!(rpcs_sieved < rpcs_unsieved, "sieving must reduce requests");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn independent_io_advances_virtual_time() {
        let times = with_world(1, |rk, fs| {
            let mut f = File::open(rk, fs, "/time", Mode::WriteOnly)?;
            let t0 = rk.now();
            f.write_at(rk, 0, &vec![0u8; 1 << 20])?;
            Ok(rk.now() - t0)
        });
        assert!(times[0] > 0.0);
    }
}
