//! Data sieving (Thakur, Gropp & Lusk — the paper's reference \[7\]).
//!
//! When a single process's request maps to many small noncontiguous file
//! extents, ROMIO's *data sieving* reads the whole spanning range into a
//! buffer with one large request and picks the wanted pieces out of it
//! ("sieves"), instead of issuing one request per extent. Writes are a
//! read-modify-write: read the span, patch the extents, write the span
//! back — which is also why concurrent write sieving needs the file-system
//! locks the paper's §II discusses.
//!
//! This module implements the sieving decision and data movement for the
//! independent I/O path of [`crate::File`]. It is an *independent*
//! optimization, orthogonal to (and historically the companion of)
//! two-phase collective I/O.

/// Sieving policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SieveConfig {
    /// Maximum spanning range to buffer (ROMIO's `ind_rd_buffer_size` /
    /// `ind_wr_buffer_size`).
    pub buffer_size: u64,
    /// Minimum number of extents before sieving is worthwhile.
    pub min_extents: usize,
    /// Only sieve when wanted bytes are at least this fraction of the span
    /// (sieving a nearly-empty span wastes bandwidth on unwanted data).
    pub min_density: f64,
}

impl Default for SieveConfig {
    fn default() -> Self {
        SieveConfig {
            buffer_size: 4 << 20,
            min_extents: 4,
            min_density: 0.25,
        }
    }
}

impl SieveConfig {
    /// Should this extent list be sieved? `extents` must be sorted.
    pub fn should_sieve(&self, extents: &[(u64, u64)]) -> bool {
        if extents.len() < self.min_extents {
            return false;
        }
        let (first, last) = (extents[0], extents[extents.len() - 1]);
        let span = last.0 + last.1 - first.0;
        if span > self.buffer_size {
            return false;
        }
        let wanted: u64 = extents.iter().map(|&(_, l)| l).sum();
        wanted as f64 >= span as f64 * self.min_density
    }

    /// The spanning range `[start, len)` of a sorted extent list.
    pub fn span(extents: &[(u64, u64)]) -> (u64, u64) {
        let first = extents[0];
        let last = extents[extents.len() - 1];
        (first.0, last.0 + last.1 - first.0)
    }
}

/// Scatter `extents`-worth of bytes from a span buffer into `dst`
/// (read sieving, user side).
pub fn scatter_from_span(span_start: u64, span: &[u8], extents: &[(u64, u64)], dst: &mut [u8]) {
    let mut cursor = 0usize;
    for &(off, len) in extents {
        let at = (off - span_start) as usize;
        dst[cursor..cursor + len as usize].copy_from_slice(&span[at..at + len as usize]);
        cursor += len as usize;
    }
    debug_assert_eq!(cursor, dst.len());
}

/// Patch `extents`-worth of bytes from `src` into a span buffer
/// (write sieving, modify step).
pub fn gather_into_span(span_start: u64, span: &mut [u8], extents: &[(u64, u64)], src: &[u8]) {
    let mut cursor = 0usize;
    for &(off, len) in extents {
        let at = (off - span_start) as usize;
        span[at..at + len as usize].copy_from_slice(&src[cursor..cursor + len as usize]);
        cursor += len as usize;
    }
    debug_assert_eq!(cursor, src.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sieving_decision_thresholds() {
        let cfg = SieveConfig {
            buffer_size: 100,
            min_extents: 3,
            min_density: 0.5,
        };
        // Too few extents.
        assert!(!cfg.should_sieve(&[(0, 10), (20, 10)]));
        // Dense enough: 30 wanted of span 50.
        assert!(cfg.should_sieve(&[(0, 10), (20, 10), (40, 10)]));
        // Span too large.
        assert!(!cfg.should_sieve(&[(0, 10), (50, 10), (200, 10)]));
        // Too sparse: 30 wanted of span 90.
        assert!(!cfg.should_sieve(&[(0, 10), (40, 10), (80, 10)]));
    }

    #[test]
    fn span_computation() {
        assert_eq!(SieveConfig::span(&[(10, 5), (30, 10)]), (10, 30));
        assert_eq!(SieveConfig::span(&[(7, 3)]), (7, 3));
    }

    #[test]
    fn scatter_and_gather_are_inverse() {
        let extents = [(10u64, 3u64), (20, 2), (25, 4)];
        let mut span = vec![0xAAu8; 20]; // covers [10, 30)
        let src: Vec<u8> = (1..=9).collect();
        gather_into_span(10, &mut span, &extents, &src);
        // Untouched gap bytes keep the sentinel.
        assert_eq!(span[3], 0xAA);
        assert_eq!(span[13], 0xAA);
        let mut dst = vec![0u8; 9];
        scatter_from_span(10, &span, &extents, &mut dst);
        assert_eq!(dst, src);
    }
}
