//! Error type unifying runtime and file-system failures.

use std::fmt;

/// Errors surfaced by MPI-IO operations.
#[derive(Debug, Clone, PartialEq)]
pub enum IoError {
    /// Propagated from the simulated MPI runtime (including simulated OOM,
    /// which is how the Fig. 6/7 OCIO failure manifests).
    Mpi(mpisim::MpiError),
    /// Propagated from the simulated parallel file system.
    Fs(pfs::PfsError),
    /// API misuse (bad mode, invalid view, …).
    Usage(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Mpi(e) => write!(f, "mpi: {e}"),
            IoError::Fs(e) => write!(f, "pfs: {e}"),
            IoError::Usage(msg) => write!(f, "usage: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<mpisim::MpiError> for IoError {
    fn from(e: mpisim::MpiError) -> Self {
        IoError::Mpi(e)
    }
}

impl From<pfs::PfsError> for IoError {
    fn from(e: pfs::PfsError) -> Self {
        IoError::Fs(e)
    }
}

pub type Result<T> = std::result::Result<T, IoError>;

impl IoError {
    /// True when the failure is a simulated out-of-memory condition.
    pub fn is_oom(&self) -> bool {
        matches!(self, IoError::Mpi(mpisim::MpiError::OutOfMemory { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: IoError = mpisim::MpiError::Aborted.into();
        assert!(e.to_string().contains("abort"));
        let e: IoError = pfs::PfsError::NotFound("/x".into()).into();
        assert!(e.to_string().contains("/x"));
        assert!(!e.is_oom());
        let e: IoError = mpisim::MpiError::OutOfMemory {
            rank: 0,
            requested: 1,
            used: 0,
            budget: 0,
        }
        .into();
        assert!(e.is_oom());
    }
}
