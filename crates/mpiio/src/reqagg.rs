//! Intra-node request aggregation for two-phase collective I/O.
//!
//! The two-level exchange (`CollectiveConfig::intra_agg`) forwards members'
//! payloads through node leaders *opaquely*: the leader relays each
//! member's piece list unchanged, so an aggregator still parses one list
//! per source rank. This module implements the stronger form from the
//! paper's lineage (Kang et al.): the leader **decodes** its members'
//! offset–length lists, merges them per destination aggregator — resolving
//! overlaps by member order and coalescing adjacent extents — and ships
//! *one merged list per (node, aggregator) pair*. The aggregator then
//! parses `O(nodes)` lists instead of `O(ranks)`, and the inter-node wire
//! carries one header per merged extent instead of one per member extent.
//!
//! Wire protocol (writes, [`exchange_pieces`]):
//!
//! 1. every rank sends its piece lists for *on-node* aggregators directly
//!    (shared-memory links; `TAG_RA_LOCAL`, one message per on-node
//!    aggregator, empty allowed so receives match on `(src, tag)`);
//! 2. non-leader members pack their *off-node* lists into one up-blob for
//!    the node leader — `(agg u32, len u32, bytes)*` (`TAG_RA_UP`);
//! 3. the leader decodes member lists per off-node aggregator in ascending
//!    member order (later members overwrite on overlap — the same
//!    index-order the flat burst applies), coalesces adjacent extents, and
//!    sends exactly one merged list to each off-node aggregator
//!    (`TAG_RA_XNODE`, empty allowed).
//!
//! An aggregator therefore receives: direct lists from its node peers, and
//! one merged list from every other node's leader — surfaced in the
//! rank-indexed `Vec<Vec<u8>>` the two-phase code already consumes, with
//! the merged list sitting at the *leader's* rank index.
//!
//! Reads run the same shape twice: [`exchange_requests`] merges request
//! lists uphill (the leader unions them into sorted, coalesced runs —
//! [`ExtentSet`] — and remembers each member's original list in a
//! [`ReadSession`]), then [`exchange_responses`] routes the aggregator's
//! run-ordered response bytes back down, the leader slicing each member's
//! requested extents out of the merged runs (`TAG_RA_DOWN` down-blob:
//! `(agg u32, len u32, bytes)*`).
//!
//! Ordering semantics: concurrent collective writes to the *same* file
//! byte are undefined in MPI-IO. Within a node the merge preserves the
//! flat burst's rank-order overwrite; across nodes the aggregator applies
//! node-merged lists in leader-rank order, which coincides with the flat
//! order for the default blocked topologies. Disjoint writes — the defined
//! case — are bit-identical to the flat burst, which is what the
//! differential suite pins.

use crate::collective::{decode_pieces, decode_requests, encode_pieces, encode_requests};
use crate::error::Result;
use crate::extents::ExtentSet;
use mpisim::{MpiError, Phase, Rank, Tag};
use std::collections::BTreeMap;

// User-level tags (must stay below mpisim's internal tag range). The
// 0x5241.. prefix is "RA" in ASCII, picked to stay clear of the small
// integers workloads use.
const TAG_RA_LOCAL: Tag = 0x5241_0001;
const TAG_RA_UP: Tag = 0x5241_0002;
const TAG_RA_XNODE: Tag = 0x5241_0003;
const TAG_RA_RESP_LOCAL: Tag = 0x5241_0004;
const TAG_RA_RESP_X: Tag = 0x5241_0005;
const TAG_RA_DOWN: Tag = 0x5241_0006;

fn push_u32(buf: &mut Vec<u8>, v: usize) {
    buf.extend_from_slice(&(v as u32).to_le_bytes());
}

fn read_u32(buf: &[u8], pos: &mut usize) -> usize {
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("u32 header")) as usize;
    *pos += 4;
    v
}

/// Receive from a fixed `(src, tag)`, treating a crashed peer as an empty
/// message — the same graceful-degradation contract as the flat burst.
fn recv_or_empty(rank: &mut Rank, src: usize, tag: Tag) -> Result<Vec<u8>> {
    match rank.recv(Some(src), Some(tag)) {
        Ok(r) => Ok(r.data),
        Err(MpiError::PeerCrashed { rank: r }) if r == src => Ok(Vec::new()),
        Err(e) => Err(e.into()),
    }
}

/// Roles for one aggregated exchange: node membership, the chaos-aware
/// leader election (identical criteria to the runtime's hierarchical
/// exchange, so the same rank leads either way), and the aggregator set
/// split into on-node and off-node.
struct RaPlan {
    me: usize,
    nprocs: usize,
    my_node: usize,
    /// World ranks on my node, ascending (includes me).
    my_peers: Vec<usize>,
    my_leader: usize,
    /// node id → leader world rank, for every node.
    leader_of: BTreeMap<usize, usize>,
    agg_ranks: Vec<usize>,
    /// Aggregators sharing my node, excluding me.
    on_node_aggs: Vec<usize>,
    /// Aggregators on other nodes (merged lists go through leaders).
    off_node_aggs: Vec<usize>,
}

impl RaPlan {
    fn i_am_agg(&self) -> bool {
        self.agg_ranks.contains(&self.me)
    }
}

/// Synchronize and elect. The barrier makes every rank's clock equal, so
/// the pure-function stall/crash queries yield the same leaders everywhere
/// without extra messages.
fn make_plan(rank: &mut Rank, agg_ranks: &[usize]) -> Result<RaPlan> {
    rank.barrier()?;
    let topo = rank
        .topology()
        .expect("request aggregation requires a topology");
    let me = rank.rank();
    let nprocs = rank.nprocs();
    let mut nodes: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for w in 0..nprocs {
        nodes.entry(topo.node_of(w)).or_default().push(w);
    }
    let now = rank.now();
    let mut leader_of: BTreeMap<usize, usize> = BTreeMap::new();
    for (&node, ws) in &nodes {
        let healthy = ws.iter().copied().find(|&w| match rank.chaos() {
            Some(e) => !e.stall_ahead(w, now) && !e.crash_ahead(w),
            None => true,
        });
        leader_of.insert(node, healthy.unwrap_or(ws[0]));
    }
    let my_node = topo.node_of(me);
    let my_peers = nodes[&my_node].clone();
    let my_leader = leader_of[&my_node];
    if me == my_leader && my_leader != my_peers[0] {
        rank.stats.leader_fallbacks += 1;
    }
    let on_node_aggs = agg_ranks
        .iter()
        .copied()
        .filter(|&a| a != me && topo.node_of(a) == my_node)
        .collect();
    let off_node_aggs = agg_ranks
        .iter()
        .copied()
        .filter(|&a| topo.node_of(a) != my_node)
        .collect();
    Ok(RaPlan {
        me,
        nprocs,
        my_node,
        my_peers,
        my_leader,
        leader_of,
        agg_ranks: agg_ranks.to_vec(),
        on_node_aggs,
        off_node_aggs,
    })
}

/// Disjoint byte runs keyed by file offset, with later inserts overwriting
/// earlier bytes on overlap — the merge buffer a node leader builds per
/// destination aggregator.
#[derive(Default)]
pub(crate) struct PieceMap {
    runs: BTreeMap<u64, Vec<u8>>,
}

impl PieceMap {
    pub(crate) fn insert(&mut self, off: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let end = off + data.len() as u64;
        // Runs are disjoint, so walking down from the last run starting
        // before `end` stops at the first non-overlapping one.
        let overlapping: Vec<u64> = self
            .runs
            .range(..end)
            .rev()
            .take_while(|(&s, v)| s + v.len() as u64 > off)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let v = self.runs.remove(&s).expect("overlapping run present");
            let e = s + v.len() as u64;
            if s < off {
                self.runs.insert(s, v[..(off - s) as usize].to_vec());
            }
            if e > end {
                self.runs.insert(end, v[(end - s) as usize..].to_vec());
            }
        }
        self.runs.insert(off, data.to_vec());
    }

    /// Sorted `(off, bytes)` pieces with adjacent runs coalesced into one
    /// extent — the aggregation win: one wire header per merged extent.
    pub(crate) fn coalesced(self) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
        for (off, bytes) in self.runs {
            match out.last_mut() {
                Some((o, b)) if *o + b.len() as u64 == off => b.extend_from_slice(&bytes),
                _ => out.push((off, bytes)),
            }
        }
        out
    }

    fn encode(self) -> Vec<u8> {
        let pieces = self.coalesced();
        if pieces.is_empty() {
            return Vec::new();
        }
        let views: Vec<(u64, &[u8])> = pieces.iter().map(|(o, b)| (*o, b.as_slice())).collect();
        encode_pieces(&views)
    }
}

/// The write-side aggregated exchange. `payloads` is indexed by world rank
/// (non-empty only at aggregator ranks); the result is indexed by source
/// rank like the flat burst, with each node's merged off-node list at its
/// leader's index.
pub(crate) fn exchange_pieces(
    rank: &mut Rank,
    agg_ranks: &[usize],
    mut payloads: Vec<Vec<u8>>,
) -> Result<Vec<Vec<u8>>> {
    let plan = make_plan(rank, agg_ranks)?;
    let start = rank.now();
    let total: u64 = payloads.iter().map(|p| p.len() as u64).sum();
    let me = plan.me;
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); plan.nprocs];
    if plan.i_am_agg() {
        out[me] = std::mem::take(&mut payloads[me]);
    }
    let mut sends = Vec::new();
    // On-node piece lists go directly over the shared-memory links.
    for &a in &plan.on_node_aggs {
        let p = std::mem::take(&mut payloads[a]);
        sends.push(rank.isend(a, TAG_RA_LOCAL, &p)?);
    }
    if me != plan.my_leader {
        let mut up = Vec::new();
        for &a in &plan.off_node_aggs {
            let p = std::mem::take(&mut payloads[a]);
            if !p.is_empty() {
                push_u32(&mut up, a);
                push_u32(&mut up, p.len());
                up.extend_from_slice(&p);
            }
        }
        sends.push(rank.isend(plan.my_leader, TAG_RA_UP, &up)?);
    } else {
        // Leader: member lists per off-node aggregator, keyed by member
        // rank so the merge applies them in ascending rank order.
        let mut contrib: BTreeMap<usize, BTreeMap<usize, Vec<u8>>> = BTreeMap::new();
        for &a in &plan.off_node_aggs {
            let p = std::mem::take(&mut payloads[a]);
            if !p.is_empty() {
                contrib.entry(a).or_default().insert(me, p);
            }
        }
        for &p in &plan.my_peers {
            if p == me {
                continue;
            }
            let up = recv_or_empty(rank, p, TAG_RA_UP)?;
            let mut pos = 0;
            while pos < up.len() {
                let a = read_u32(&up, &mut pos);
                let len = read_u32(&up, &mut pos);
                contrib
                    .entry(a)
                    .or_default()
                    .insert(p, up[pos..pos + len].to_vec());
                pos += len;
            }
        }
        for &a in &plan.off_node_aggs {
            let merged = match contrib.remove(&a) {
                Some(lists) => {
                    let mut map = PieceMap::default();
                    let mut moved = 0u64;
                    for blob in lists.values() {
                        for (off, bytes) in decode_pieces(blob)? {
                            map.insert(off, bytes);
                            moved += bytes.len() as u64;
                        }
                    }
                    rank.charge_memcpy(moved);
                    map.encode()
                }
                None => Vec::new(),
            };
            sends.push(rank.isend(a, TAG_RA_XNODE, &merged)?);
        }
    }
    if plan.i_am_agg() {
        for &p in &plan.my_peers {
            if p == me {
                continue;
            }
            out[p] = recv_or_empty(rank, p, TAG_RA_LOCAL)?;
        }
        for (&node, &l) in &plan.leader_of {
            if node == plan.my_node {
                continue;
            }
            out[l] = recv_or_empty(rank, l, TAG_RA_XNODE)?;
        }
    }
    rank.waitall(sends)?;
    rank.trace_mark("reqagg_pieces", Phase::Exchange, start, total);
    Ok(out)
}

/// State carried from the request leg to the response leg of an
/// aggregated collective read round.
pub(crate) struct ReadSession {
    plan: RaPlan,
    /// Leader only: agg rank → the merged, sorted, coalesced runs sent to
    /// that aggregator (the order its response bytes come back in).
    merged: BTreeMap<usize, Vec<(u64, u64)>>,
    /// Leader only: agg rank → member rank → that member's original
    /// request list (the slice order its scatter plan expects).
    member_reqs: BTreeMap<usize, BTreeMap<usize, Vec<(u64, u64)>>>,
}

/// The read-side request leg: like [`exchange_pieces`] but merging
/// offset–length request lists via extent union. Returns the rank-indexed
/// incoming requests (for aggregators) plus the [`ReadSession`] the
/// response leg needs.
pub(crate) fn exchange_requests(
    rank: &mut Rank,
    agg_ranks: &[usize],
    mut requests: Vec<Vec<u8>>,
) -> Result<(Vec<Vec<u8>>, ReadSession)> {
    let plan = make_plan(rank, agg_ranks)?;
    let start = rank.now();
    let total: u64 = requests.iter().map(|p| p.len() as u64).sum();
    let me = plan.me;
    let mut out: Vec<Vec<u8>> = vec![Vec::new(); plan.nprocs];
    if plan.i_am_agg() {
        out[me] = std::mem::take(&mut requests[me]);
    }
    let mut merged: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
    let mut member_reqs: BTreeMap<usize, BTreeMap<usize, Vec<(u64, u64)>>> = BTreeMap::new();
    let mut sends = Vec::new();
    for &a in &plan.on_node_aggs {
        let p = std::mem::take(&mut requests[a]);
        sends.push(rank.isend(a, TAG_RA_LOCAL, &p)?);
    }
    if me != plan.my_leader {
        let mut up = Vec::new();
        for &a in &plan.off_node_aggs {
            let p = std::mem::take(&mut requests[a]);
            if !p.is_empty() {
                push_u32(&mut up, a);
                push_u32(&mut up, p.len());
                up.extend_from_slice(&p);
            }
        }
        sends.push(rank.isend(plan.my_leader, TAG_RA_UP, &up)?);
    } else {
        for &a in &plan.off_node_aggs {
            let p = std::mem::take(&mut requests[a]);
            if !p.is_empty() {
                member_reqs
                    .entry(a)
                    .or_default()
                    .insert(me, decode_requests(&p)?);
            }
        }
        for &p in &plan.my_peers {
            if p == me {
                continue;
            }
            let up = recv_or_empty(rank, p, TAG_RA_UP)?;
            let mut pos = 0;
            while pos < up.len() {
                let a = read_u32(&up, &mut pos);
                let len = read_u32(&up, &mut pos);
                let reqs = decode_requests(&up[pos..pos + len])?;
                member_reqs.entry(a).or_default().insert(p, reqs);
                pos += len;
            }
        }
        for &a in &plan.off_node_aggs {
            let enc = match member_reqs.get(&a) {
                Some(lists) => {
                    let mut union = ExtentSet::new();
                    for reqs in lists.values() {
                        for &(o, l) in reqs {
                            union.insert(o, l);
                        }
                    }
                    let runs = union.runs().to_vec();
                    let enc = encode_requests(&runs);
                    merged.insert(a, runs);
                    enc
                }
                None => Vec::new(),
            };
            sends.push(rank.isend(a, TAG_RA_XNODE, &enc)?);
        }
    }
    if plan.i_am_agg() {
        for &p in &plan.my_peers {
            if p == me {
                continue;
            }
            out[p] = recv_or_empty(rank, p, TAG_RA_LOCAL)?;
        }
        for (&node, &l) in &plan.leader_of {
            if node == plan.my_node {
                continue;
            }
            out[l] = recv_or_empty(rank, l, TAG_RA_XNODE)?;
        }
    }
    rank.waitall(sends)?;
    rank.trace_mark("reqagg_reads", Phase::Exchange, start, total);
    Ok((
        out,
        ReadSession {
            plan,
            merged,
            member_reqs,
        },
    ))
}

/// Slice one member's requested extents out of a merged run-ordered
/// response blob. Each request lies wholly inside one merged run (the
/// union covers it contiguously), so a prefix-sum lookup suffices.
fn slice_member(runs: &[(u64, u64)], prefix: &[u64], blob: &[u8], reqs: &[(u64, u64)]) -> Vec<u8> {
    let total: u64 = reqs.iter().map(|&(_, l)| l).sum();
    let mut out = Vec::with_capacity(total as usize);
    for &(off, len) in reqs {
        let idx = runs.partition_point(|&(o, _)| o <= off) - 1;
        let (ro, rl) = runs[idx];
        debug_assert!(
            off >= ro && off + len <= ro + rl,
            "request outside merged run"
        );
        let at = (prefix[idx] + (off - ro)) as usize;
        // A crashed aggregator yields an empty blob; leave zeros rather
        // than slicing past the end (mirrors the flat burst's contract).
        if at + len as usize <= blob.len() {
            out.extend_from_slice(&blob[at..at + len as usize]);
        } else {
            out.resize(out.len() + len as usize, 0);
        }
    }
    out
}

/// The read-side response leg: aggregators answer each source's request
/// list in order; leaders fan the merged responses back out to members.
/// Returns response bytes indexed by *aggregator* rank, in this rank's
/// original request order — exactly what the flat burst's scatter expects.
pub(crate) fn exchange_responses(
    rank: &mut Rank,
    session: ReadSession,
    mut responses: Vec<Vec<u8>>,
) -> Result<Vec<Vec<u8>>> {
    let ReadSession {
        plan,
        merged,
        member_reqs,
    } = session;
    let start = rank.now();
    let total: u64 = responses.iter().map(|p| p.len() as u64).sum();
    let me = plan.me;
    let mut answers: Vec<Vec<u8>> = vec![Vec::new(); plan.nprocs];
    let mut sends = Vec::new();
    if plan.i_am_agg() {
        answers[me] = std::mem::take(&mut responses[me]);
        // Answer node peers directly, and every other node's leader with
        // the merged-run-ordered bytes. One message per destination, empty
        // allowed, so receives match on (src, tag).
        for &p in &plan.my_peers {
            if p == me {
                continue;
            }
            let r = std::mem::take(&mut responses[p]);
            sends.push(rank.isend(p, TAG_RA_RESP_LOCAL, &r)?);
        }
        for (&node, &l) in &plan.leader_of {
            if node == plan.my_node {
                continue;
            }
            let r = std::mem::take(&mut responses[l]);
            sends.push(rank.isend(l, TAG_RA_RESP_X, &r)?);
        }
    }
    for &a in &plan.on_node_aggs {
        answers[a] = recv_or_empty(rank, a, TAG_RA_RESP_LOCAL)?;
    }
    if me == plan.my_leader {
        // Collect merged responses, then deal each member its slices.
        let mut down: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
        let mut moved = 0u64;
        for &a in &plan.off_node_aggs {
            let blob = recv_or_empty(rank, a, TAG_RA_RESP_X)?;
            let Some(runs) = merged.get(&a) else {
                continue;
            };
            let mut prefix = Vec::with_capacity(runs.len());
            let mut acc = 0u64;
            for &(_, l) in runs {
                prefix.push(acc);
                acc += l;
            }
            if let Some(lists) = member_reqs.get(&a) {
                for (&m, reqs) in lists {
                    let bytes = slice_member(runs, &prefix, &blob, reqs);
                    moved += bytes.len() as u64;
                    if m == me {
                        answers[a] = bytes;
                    } else {
                        let blob = down.entry(m).or_default();
                        push_u32(blob, a);
                        push_u32(blob, bytes.len());
                        blob.extend_from_slice(&bytes);
                    }
                }
            }
        }
        rank.charge_memcpy(moved);
        for &m in &plan.my_peers {
            if m == me {
                continue;
            }
            let blob = down.remove(&m).unwrap_or_default();
            sends.push(rank.isend(m, TAG_RA_DOWN, &blob)?);
        }
    } else {
        let down = recv_or_empty(rank, plan.my_leader, TAG_RA_DOWN)?;
        let mut pos = 0;
        while pos < down.len() {
            let a = read_u32(&down, &mut pos);
            let len = read_u32(&down, &mut pos);
            answers[a] = down[pos..pos + len].to_vec();
            pos += len;
        }
    }
    rank.waitall(sends)?;
    rank.trace_mark("reqagg_resp", Phase::Exchange, start, total);
    Ok(answers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pieces(map: PieceMap) -> Vec<(u64, Vec<u8>)> {
        map.coalesced()
    }

    #[test]
    fn piecemap_coalesces_adjacent_extents() {
        let mut m = PieceMap::default();
        m.insert(10, &[1, 2]);
        m.insert(12, &[3, 4]);
        m.insert(20, &[9]);
        assert_eq!(pieces(m), vec![(10, vec![1, 2, 3, 4]), (20, vec![9])]);
    }

    #[test]
    fn piecemap_later_insert_overwrites_overlap() {
        let mut m = PieceMap::default();
        m.insert(0, &[1, 1, 1, 1]);
        m.insert(1, &[2, 2]);
        assert_eq!(pieces(m), vec![(0, vec![1, 2, 2, 1])]);
    }

    #[test]
    fn piecemap_insert_spanning_many_runs() {
        let mut m = PieceMap::default();
        m.insert(0, &[1, 1]);
        m.insert(4, &[2, 2]);
        m.insert(8, &[3, 3]);
        m.insert(1, &[7; 8]);
        assert_eq!(pieces(m), vec![(0, vec![1, 7, 7, 7, 7, 7, 7, 7, 7, 3])]);
    }

    #[test]
    fn piecemap_splits_surrounding_run() {
        let mut m = PieceMap::default();
        m.insert(0, &[5; 10]);
        m.insert(3, &[8, 8]);
        // One coalesced extent, bytes overwritten in the middle.
        let got = pieces(m);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0);
        assert_eq!(got[0].1, vec![5, 5, 5, 8, 8, 5, 5, 5, 5, 5]);
    }

    #[test]
    fn piecemap_empty_insert_is_noop() {
        let mut m = PieceMap::default();
        m.insert(5, &[]);
        assert!(pieces(m).is_empty());
    }

    #[test]
    fn slice_member_uses_run_prefix_sums() {
        // Merged runs [10,14) and [20,23); blob holds their bytes back to
        // back. A member that asked for (12,2) and (20,3) gets exactly
        // those bytes in request order.
        let runs = vec![(10u64, 4u64), (20, 3)];
        let prefix = vec![0u64, 4];
        let blob = vec![10, 11, 12, 13, 20, 21, 22];
        let got = slice_member(&runs, &prefix, &blob, &[(12, 2), (20, 3)]);
        assert_eq!(got, vec![12, 13, 20, 21, 22]);
    }

    #[test]
    fn slice_member_zero_fills_on_short_blob() {
        let runs = vec![(0u64, 4u64)];
        let prefix = vec![0u64];
        let got = slice_member(&runs, &prefix, &[], &[(0, 4)]);
        assert_eq!(got, vec![0, 0, 0, 0]);
    }
}
