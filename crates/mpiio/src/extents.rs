//! A sorted, coalescing set of byte extents.
//!
//! Used by the two-phase collective implementation to track which parts of
//! an aggregator's file domain were actually filled (so holes are not
//! written), and reused by TCIO for its level-2 segment validity tracking.

/// Sorted, non-overlapping, coalesced `(offset, len)` runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtentSet {
    runs: Vec<(u64, u64)>,
}

impl ExtentSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of distinct runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.runs.iter().map(|&(_, l)| l).sum()
    }

    pub fn runs(&self) -> &[(u64, u64)] {
        &self.runs
    }

    /// Smallest offset covered, if any.
    pub fn min(&self) -> Option<u64> {
        self.runs.first().map(|&(o, _)| o)
    }

    /// One past the largest offset covered, if any.
    pub fn max(&self) -> Option<u64> {
        self.runs.last().map(|&(o, l)| o + l)
    }

    /// Insert `[off, off+len)`, merging with overlapping/adjacent runs.
    pub fn insert(&mut self, off: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = off + len;
        // Find insertion point: first run whose end >= off (candidates for
        // merging start here).
        let start_idx = self.runs.partition_point(|&(o, l)| o + l < off);
        let mut merge_end = start_idx;
        let mut new_off = off;
        let mut new_end = end;
        while merge_end < self.runs.len() && self.runs[merge_end].0 <= end {
            new_off = new_off.min(self.runs[merge_end].0);
            new_end = new_end.max(self.runs[merge_end].0 + self.runs[merge_end].1);
            merge_end += 1;
        }
        self.runs.splice(
            start_idx..merge_end,
            std::iter::once((new_off, new_end - new_off)),
        );
    }

    /// Does the set fully cover `[off, off+len)`?
    pub fn contains(&self, off: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let idx = self.runs.partition_point(|&(o, l)| o + l <= off);
        match self.runs.get(idx) {
            Some(&(o, l)) => o <= off && off + len <= o + l,
            None => false,
        }
    }

    /// Remove everything (reuse without reallocating).
    pub fn clear(&mut self) {
        self.runs.clear();
    }

    /// Iterate over the runs intersected with `[off, off+len)`.
    pub fn intersect(&self, off: u64, len: u64) -> Vec<(u64, u64)> {
        let end = off + len;
        let mut out = Vec::new();
        for &(o, l) in &self.runs {
            let s = o.max(off);
            let e = (o + l).min(end);
            if s < e {
                out.push((s, e - s));
            }
            if o >= end {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_disjoint_keeps_sorted() {
        let mut s = ExtentSet::new();
        s.insert(10, 5);
        s.insert(0, 5);
        s.insert(20, 5);
        assert_eq!(s.runs(), &[(0, 5), (10, 5), (20, 5)]);
        assert_eq!(s.covered(), 15);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(25));
    }

    #[test]
    fn adjacent_runs_coalesce() {
        let mut s = ExtentSet::new();
        s.insert(0, 5);
        s.insert(5, 5);
        assert_eq!(s.runs(), &[(0, 10)]);
    }

    #[test]
    fn overlapping_runs_merge() {
        let mut s = ExtentSet::new();
        s.insert(0, 10);
        s.insert(5, 10);
        assert_eq!(s.runs(), &[(0, 15)]);
    }

    #[test]
    fn bridging_insert_merges_many() {
        let mut s = ExtentSet::new();
        s.insert(0, 2);
        s.insert(4, 2);
        s.insert(8, 2);
        s.insert(1, 8);
        assert_eq!(s.runs(), &[(0, 10)]);
    }

    #[test]
    fn zero_length_is_noop() {
        let mut s = ExtentSet::new();
        s.insert(5, 0);
        assert!(s.is_empty());
        assert!(s.contains(5, 0));
    }

    #[test]
    fn contains_checks_full_coverage() {
        let mut s = ExtentSet::new();
        s.insert(0, 10);
        s.insert(20, 10);
        assert!(s.contains(0, 10));
        assert!(s.contains(2, 5));
        assert!(!s.contains(5, 10));
        assert!(!s.contains(15, 2));
        assert!(s.contains(25, 5));
        assert!(!s.contains(25, 6));
    }

    #[test]
    fn intersect_clips_runs() {
        let mut s = ExtentSet::new();
        s.insert(0, 10);
        s.insert(20, 10);
        assert_eq!(s.intersect(5, 20), vec![(5, 5), (20, 5)]);
        assert_eq!(s.intersect(10, 10), vec![]);
        assert_eq!(s.intersect(0, 100), vec![(0, 10), (20, 10)]);
    }

    #[test]
    fn clear_resets() {
        let mut s = ExtentSet::new();
        s.insert(0, 5);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.covered(), 0);
    }
}
