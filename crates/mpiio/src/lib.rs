//! # mpiio — MPI-IO over the simulated runtime and file system
//!
//! Implements the MPI-IO feature subset the paper's evaluation needs:
//!
//! * collective `open`/`close` and `set_view` (file views built from the
//!   derived datatypes of [`mpisim::datatype`]);
//! * **independent** `read_at`/`write_at` — the "vanilla MPI-IO" baseline
//!   of §V.C, where every noncontiguous extent becomes its own file-system
//!   request;
//! * **two-phase collective** `write_all_at`/`read_all_at` — the paper's
//!   OCIO baseline (ROMIO's algorithm), with aggregators, file-domain
//!   partitioning, an Isend/Irecv all-to-all exchange phase, and
//!   memory-accounted collective buffers.
//!
//! See `DESIGN.md` at the repository root for the experiment map.

pub mod collective;
pub mod error;
pub mod extents;
pub mod file;
pub mod parcoll;
pub mod reqagg;
pub mod retry;
pub mod sieve;
pub mod view;
pub mod viewcoll;

pub use collective::{read_all_at, write_all_at, CollectiveConfig};
pub use error::{IoError, Result};
pub use extents::ExtentSet;
pub use file::{File, Mode, Whence};
pub use parcoll::write_all_partitioned;
pub use retry::pfs_retry;
pub use sieve::SieveConfig;
pub use view::FileView;
pub use viewcoll::{read_all_view_based, register_views, write_all_view_based, RegisteredViews};
