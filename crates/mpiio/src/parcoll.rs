//! Partitioned collective I/O (ParColl — Yu & Vetter, ICPP'08, the
//! paper's related work \[15\]).
//!
//! ParColl's observation is the "collective wall": at scale, the global
//! synchronization and all-to-all exchange of two-phase collective I/O
//! dominate the actual I/O time. Its remedy: divide the processes into
//! disjoint groups and let each group perform collective aggregation
//! independently over its own file region — the exchange burst then costs
//! `G²` per group instead of `P²` globally, and no global synchronization
//! happens at all.
//!
//! [`write_all_partitioned`] runs the two-phase algorithm scoped to a
//! [`mpisim::SubComm`]: group-local domain agreement, group-local burst
//! exchange, group-local aggregators. It is most effective when each
//! group's data is clustered in the file (ParColl's "file domain
//! partitioning"); with fully interleaved data it still works, but
//! aggregator runs fragment.

use crate::collective::CollectiveConfig;
use crate::error::{IoError, Result};
use crate::extents::ExtentSet;
use crate::file::File;
use mpisim::{Rank, ReduceOp, SubComm};

/// Serialize pieces as in the two-phase exchange (offset, len, bytes).
fn encode_pieces(pieces: &[(u64, &[u8])]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + pieces.len() * 12);
    out.extend_from_slice(&(pieces.len() as u32).to_le_bytes());
    for (off, d) in pieces {
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&(d.len() as u32).to_le_bytes());
    }
    for (_, d) in pieces {
        out.extend_from_slice(d);
    }
    out
}

fn decode_pieces(buf: &[u8]) -> Result<Vec<(u64, &[u8])>> {
    if buf.is_empty() {
        return Ok(Vec::new());
    }
    let bad = || IoError::Usage("malformed partitioned-exchange payload".into());
    if buf.len() < 4 {
        return Err(bad());
    }
    let n = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let mut meta = Vec::with_capacity(n);
    let mut pos = 4usize;
    for _ in 0..n {
        if pos + 12 > buf.len() {
            return Err(bad());
        }
        let off = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
        let len = u32::from_le_bytes(buf[pos + 8..pos + 12].try_into().unwrap()) as usize;
        meta.push((off, len));
        pos += 12;
    }
    let mut out = Vec::with_capacity(n);
    for (off, len) in meta {
        if pos + len > buf.len() {
            return Err(bad());
        }
        out.push((off, &buf[pos..pos + len]));
        pos += len;
    }
    Ok(out)
}

/// Partitioned collective write: every member of `comm` calls with its own
/// (possibly empty) data at a view-stream `offset`. Different groups
/// proceed completely independently — no global synchronization.
pub fn write_all_partitioned(
    rank: &mut Rank,
    file: &mut File,
    comm: &SubComm,
    offset: u64,
    data: &[u8],
    cfg: &CollectiveConfig,
) -> Result<()> {
    if !file.mode().writable() {
        return Err(IoError::Usage("file is not open for writing".into()));
    }
    let g = comm.size();
    let extents = file.view().map_range(offset, data.len() as u64);
    let mut cursors = Vec::with_capacity(extents.len());
    let mut acc = 0u64;
    for &(_, len) in &extents {
        cursors.push(acc);
        acc += len;
    }
    let local_min = extents.first().map_or(u64::MAX, |&(o, _)| o);
    let local_max = extents.last().map_or(0, |&(o, l)| o + l);

    // Group-local domain agreement.
    let gmin = rank.allreduce_u64_in(comm, local_min, ReduceOp::Min)?;
    let gmax = rank.allreduce_u64_in(comm, local_max, ReduceOp::Max)?;
    if gmin >= gmax {
        rank.barrier_in(comm)?;
        return Ok(());
    }
    let naggs = cfg.cb_nodes.unwrap_or(g).clamp(1, g);
    let mut dsize = (gmax - gmin).div_ceil(naggs as u64);
    if let Some(a) = cfg.align {
        if a > 0 {
            dsize = dsize.div_ceil(a) * a;
        }
    }
    // ROMIO-style chunking: cb_buffer bounds the per-round collective
    // buffer, turning the group exchange into multiple rounds (one round
    // over the whole domain when unset — the historical behaviour).
    let round_size = cfg.cb_buffer.unwrap_or(dsize).max(1).min(dsize);
    let rounds = dsize.div_ceil(round_size);
    // Aggregator i (a group index) owns [gmin + i·dsize, …).
    let agg_index_of =
        |grank: usize| -> Option<usize> { (0..naggs).find(|&i| i * g / naggs == grank) };
    let window = |i: usize, r: u64| -> (u64, u64) {
        let ds = gmin + i as u64 * dsize;
        let de = (ds + dsize).min(gmax);
        let ws = ds + r * round_size;
        let we = (ws + round_size).min(de);
        (ws.min(de), we)
    };

    // Deferred completions of in-flight rounds (pipelined mode only).
    let mut inflight: std::collections::VecDeque<(mpisim::DeferredIo, mpisim::MemGuard)> =
        std::collections::VecDeque::new();

    for r in 0..rounds {
        // Double buffering: settle the oldest in-flight write before
        // opening this round's exchange.
        while inflight.len() >= 2 {
            let (h, _cb) = inflight.pop_front().expect("non-empty inflight");
            rank.io_complete(h);
        }
        // Exchange phase, scoped to the group.
        let mut payloads: Vec<Vec<u8>> = vec![Vec::new(); g];
        for i in 0..naggs {
            let (ws, we) = window(i, r);
            if ws >= we {
                continue;
            }
            let mut pieces: Vec<(u64, &[u8])> = Vec::new();
            for (k, &(eoff, elen)) in extents.iter().enumerate() {
                let s = eoff.max(ws);
                let e = (eoff + elen).min(we);
                if s < e {
                    let dstart = (cursors[k] + (s - eoff)) as usize;
                    pieces.push((s, &data[dstart..dstart + (e - s) as usize]));
                }
            }
            if !pieces.is_empty() {
                payloads[i * g / naggs] = encode_pieces(&pieces);
            }
        }
        // Group-scoped burst, optionally two-level (node leaders only
        // cross nodes) when the config asks for intra-node aggregation.
        // `req_agg` rides the same two-level path here: the sub-communicator
        // exchange has no semantic-merge variant.
        let exchanged = if cfg.intra_agg || cfg.req_agg {
            rank.alltoallv_burst_hier_in(comm, payloads)?
        } else {
            rank.alltoallv_burst_in(comm, payloads)?
        };

        // I/O phase (group aggregators only).
        if let Some(i) = agg_index_of(comm.group_rank()) {
            let (ws, we) = window(i, r);
            if ws < we {
                let win_len = (we - ws) as usize;
                let cb = rank.alloc(win_len as u64)?;
                rank.note_mem_peak();
                let mut buf = vec![0u8; win_len];
                let mut dirty = ExtentSet::new();
                for payload in &exchanged {
                    for (off, bytes) in decode_pieces(payload)? {
                        let at = (off - ws) as usize;
                        buf[at..at + bytes.len()].copy_from_slice(bytes);
                        rank.charge_memcpy(bytes.len() as u64);
                        dirty.insert(off, bytes.len() as u64);
                    }
                }
                let pfs = file.pfs().clone();
                let fid = file.file_id();
                let io_start = rank.now();
                let mut written = 0u64;
                let mut done = rank.now();
                for &(off, len) in dirty.runs() {
                    let at = (off - ws) as usize;
                    let slice = &buf[at..at + len as usize];
                    let t = crate::retry::pfs_retry(rank, |rk| {
                        pfs.write_at(fid, rk.rank(), off, slice, rk.now())
                    })?;
                    done = done.max(t);
                    written += len;
                    rank.stats.io_writes += 1;
                    rank.stats.io_write_bytes += len;
                }
                if cfg.pipeline {
                    inflight.push_back((
                        mpisim::DeferredIo {
                            name: "par_io_pipe",
                            submitted: io_start,
                            done,
                            bytes: written,
                        },
                        cb,
                    ));
                } else {
                    drop(cb);
                    rank.sync_to(done);
                }
            }
        }
    }
    // Drain the pipeline before the closing group barrier.
    while let Some((h, _cb)) = inflight.pop_front() {
        rank.io_complete(h);
    }
    rank.barrier_in(comm)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::Mode;
    use mpisim::SimConfig;
    use pfs::{Pfs, PfsConfig};
    use std::sync::Arc;

    fn to_mpi(e: IoError) -> mpisim::MpiError {
        match e {
            IoError::Mpi(m) => m,
            other => mpisim::MpiError::InvalidDatatype(other.to_string()),
        }
    }

    /// IOR-segmented-style layout: group-contiguous blocks so each group's
    /// file region is clustered (ParColl's sweet spot).
    fn run_partitioned(nprocs: usize, groups: usize, block: usize) -> Vec<u8> {
        let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(nprocs, SimConfig::default(), move |rk| {
            let gsize = nprocs / groups;
            let comm = rk.split((rk.rank() / gsize) as u64)?;
            let mut f = File::open(rk, &fs2, "/pc", Mode::WriteOnly).map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; block];
            write_all_partitioned(
                rk,
                &mut f,
                &comm,
                (rk.rank() * block) as u64,
                &data,
                &CollectiveConfig::default(),
            )
            .map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/pc").unwrap();
        fs.snapshot_file(fid).unwrap()
    }

    #[test]
    fn partitioned_write_produces_correct_file() {
        for groups in [1, 2, 4] {
            let bytes = run_partitioned(8, groups, 64);
            assert_eq!(bytes.len(), 8 * 64, "groups={groups}");
            for r in 0..8 {
                assert!(
                    bytes[r * 64..(r + 1) * 64]
                        .iter()
                        .all(|&b| b == r as u8 + 1),
                    "rank {r} region corrupted (groups={groups})"
                );
            }
        }
    }

    fn run_partitioned_cfg(
        nprocs: usize,
        groups: usize,
        block: usize,
        cfg: CollectiveConfig,
    ) -> Vec<u8> {
        let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(nprocs, SimConfig::default(), move |rk| {
            let gsize = nprocs / groups;
            let comm = rk.split((rk.rank() / gsize) as u64)?;
            let mut f = File::open(rk, &fs2, "/pc", Mode::WriteOnly).map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; block];
            write_all_partitioned(rk, &mut f, &comm, (rk.rank() * block) as u64, &data, &cfg)
                .map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/pc").unwrap();
        fs.snapshot_file(fid).unwrap()
    }

    #[test]
    fn partitioned_chunked_rounds_match_single_round() {
        let flat = run_partitioned(8, 2, 64);
        for pipeline in [false, true] {
            let cfg = CollectiveConfig {
                cb_buffer: Some(48), // forces multiple rounds per domain
                cb_nodes: Some(2),
                pipeline,
                ..Default::default()
            };
            let bytes = run_partitioned_cfg(8, 2, 64, cfg);
            assert_eq!(bytes, flat, "pipeline={pipeline} diverged");
        }
    }

    #[test]
    fn partitioned_req_agg_uses_two_level_and_stays_correct() {
        let flat = run_partitioned(8, 2, 64);
        let nprocs = 8;
        let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let sim = SimConfig {
            topology: Some(mpisim::Topology::blocked(nprocs, 4)),
            ..Default::default()
        };
        mpisim::run(nprocs, sim, move |rk| {
            let comm = rk.split((rk.rank() / 4) as u64)?;
            let mut f = File::open(rk, &fs2, "/pc", Mode::WriteOnly).map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; 64];
            let cfg = CollectiveConfig {
                req_agg: true,
                cb_buffer: Some(48),
                pipeline: true,
                ..Default::default()
            };
            write_all_partitioned(rk, &mut f, &comm, (rk.rank() * 64) as u64, &data, &cfg)
                .map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/pc").unwrap();
        assert_eq!(fs.snapshot_file(fid).unwrap(), flat);
    }

    #[test]
    fn partitioned_two_level_with_topology_is_correct() {
        // Groups are contiguous rank ranges of 4 over 2 nodes of ppn=4:
        // group 0 = node 0, group 1 = node 1 — plus a misaligned split
        // where each group straddles both nodes.
        for gsize in [4usize, 2] {
            let nprocs = 8;
            let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
            let fs2 = Arc::clone(&fs);
            let sim = SimConfig {
                topology: Some(mpisim::Topology::blocked(nprocs, 4)),
                ..Default::default()
            };
            mpisim::run(nprocs, sim, move |rk| {
                let comm = rk.split((rk.rank() / gsize) as u64)?;
                let mut f = File::open(rk, &fs2, "/pc2", Mode::WriteOnly).map_err(to_mpi)?;
                let data = vec![rk.rank() as u8 + 1; 64];
                let cfg = CollectiveConfig {
                    intra_agg: true,
                    cb_nodes: Some(2),
                    ..Default::default()
                };
                write_all_partitioned(rk, &mut f, &comm, (rk.rank() * 64) as u64, &data, &cfg)
                    .map_err(to_mpi)?;
                f.close(rk).map_err(to_mpi)?;
                Ok(())
            })
            .unwrap();
            let fid = fs.open("/pc2").unwrap();
            let bytes = fs.snapshot_file(fid).unwrap();
            for r in 0..nprocs {
                assert!(
                    bytes[r * 64..(r + 1) * 64]
                        .iter()
                        .all(|&b| b == r as u8 + 1),
                    "rank {r} region corrupted (gsize={gsize})"
                );
            }
        }
    }

    #[test]
    fn interleaved_data_still_correct_across_groups() {
        // Blocks interleave globally (the Fig. 2 pattern) while groups are
        // contiguous rank ranges: group domains overlap, extents fragment,
        // but the bytes must still be right.
        let nprocs = 6;
        let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(nprocs, SimConfig::default(), move |rk| {
            let comm = rk.split((rk.rank() / 3) as u64)?;
            let mut f = File::open(rk, &fs2, "/il", Mode::WriteOnly).map_err(to_mpi)?;
            // Each rank writes 4 interleaved 16-byte blocks.
            let mut blob = Vec::new();
            let mut offs = Vec::new();
            for i in 0..4usize {
                offs.push(((i * nprocs + rk.rank()) * 16) as u64);
                blob.extend_from_slice(&[rk.rank() as u8 + 1; 16]);
            }
            // One partitioned collective per block round.
            for (i, &off) in offs.iter().enumerate() {
                write_all_partitioned(
                    rk,
                    &mut f,
                    &comm,
                    off,
                    &blob[i * 16..(i + 1) * 16],
                    &CollectiveConfig::default(),
                )
                .map_err(to_mpi)?;
            }
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/il").unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        for b in 0..24 {
            let expect = (b % nprocs) as u8 + 1;
            assert!(
                bytes[b * 16..(b + 1) * 16].iter().all(|&x| x == expect),
                "block {b} corrupted"
            );
        }
    }

    #[test]
    fn groups_do_not_globally_synchronize() {
        // A rank in group 0 must be able to finish its partitioned
        // collective while group 1's ranks are still busy elsewhere —
        // i.e., no hidden world collective. We verify by having group 1
        // delay for a long virtual time first; group 0's elapsed time must
        // not inherit that delay.
        let nprocs = 4;
        let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
        let rep = mpisim::run(nprocs, SimConfig::default(), move |rk| {
            let comm = rk.split((rk.rank() / 2) as u64)?;
            if rk.rank() >= 2 {
                rk.advance(1000.0); // group 1 is very late
            }
            let t0 = rk.now();
            let mut f = File::open_independent(rk, &fs, "/ns", Mode::WriteOnly).map_err(to_mpi)?;
            let data = vec![1u8; 64];
            write_all_partitioned(
                rk,
                &mut f,
                &comm,
                (rk.rank() * 64) as u64,
                &data,
                &CollectiveConfig::default(),
            )
            .map_err(to_mpi)?;
            Ok(rk.now() - t0)
        })
        .unwrap();
        assert!(
            rep.results[0] < 500.0,
            "group 0 must not wait for group 1 ({}s)",
            rep.results[0]
        );
    }
}
