//! View-based collective I/O (Blas, Isaila, Singh & Carretero,
//! CCGRID'08 — the paper's related work \[16\]).
//!
//! The two-phase exchange ships an *offset/length list alongside every
//! data piece* on every collective call. View-based collective I/O
//! registers each rank's **file view** at the aggregators once, at
//! view-declaration time; a collective write then sends only
//! `(stream position, raw bytes)` per aggregator — the aggregator
//! reconstructs the file placement from the stored view. This reduces
//! per-call metadata ("the cost of data scatter-gather operations and
//! file metadata transfer") at the price of keeping P views per
//! aggregator.
//!
//! A key property makes the sender side cheap: file views are monotone, so
//! the set of a rank's stream bytes that lands inside an aggregator's file
//! domain is a *single contiguous stream interval* — one header per
//! aggregator, regardless of how fragmented the file extents are.

use crate::collective::{compute_domains, exchange, CollectiveConfig};
use crate::error::{IoError, Result};
use crate::extents::ExtentSet;
use crate::file::File;
use crate::view::FileView;
use mpisim::Rank;

/// The views of all ranks, registered collectively.
#[derive(Debug)]
pub struct RegisteredViews {
    views: Vec<FileView>,
}

/// Collectively register every rank's current view (call after
/// `set_view`; re-call if views change). This is the one-time metadata
/// exchange that per-call offset lists are traded against.
pub fn register_views(rank: &mut Rank, file: &File) -> Result<RegisteredViews> {
    let gathered = rank.allgather(&file.view().serialize())?;
    let views = gathered
        .iter()
        .map(|b| FileView::deserialize(b))
        .collect::<Result<Vec<_>>>()?;
    Ok(RegisteredViews { views })
}

/// View-based collective write: all ranks call, each with its own data at
/// a view-stream `offset`. Functionally identical to
/// [`crate::write_all_at`]; the exchange carries one 16-byte header per
/// (rank, aggregator) pair instead of one 12-byte header per file extent.
pub fn write_all_view_based(
    rank: &mut Rank,
    file: &mut File,
    views: &RegisteredViews,
    offset: u64,
    data: &[u8],
    cfg: &CollectiveConfig,
) -> Result<()> {
    if !file.mode().writable() {
        return Err(IoError::Usage("file is not open for writing".into()));
    }
    if views.views.len() != rank.nprocs() {
        return Err(IoError::Usage(
            "registered views do not match the communicator".into(),
        ));
    }
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let view = views.views[me].clone();
    let extents = view.map_range(offset, data.len() as u64);
    let local_min = extents.first().map_or(u64::MAX, |&(o, _)| o);
    let local_max = extents.last().map_or(0, |&(o, l)| o + l);

    let Some(doms) = compute_domains(rank, local_min, local_max, cfg)? else {
        rank.barrier()?;
        return Ok(());
    };
    let my_agg = doms.my_agg_index(me, nprocs);

    // Deferred completions of in-flight rounds (pipelined mode only); the
    // collective-buffer guard rides along so both buffers stay charged.
    let mut inflight: std::collections::VecDeque<(mpisim::DeferredIo, mpisim::MemGuard)> =
        std::collections::VecDeque::new();

    for r in 0..doms.rounds {
        // Double buffering: settle the oldest in-flight write before
        // opening this round's exchange.
        while inflight.len() >= 2 {
            let (h, _cb) = inflight.pop_front().expect("non-empty inflight");
            rank.io_complete(h);
        }
        // Sender side: one contiguous stream interval per aggregator.
        let mut payloads: Vec<Vec<u8>> = vec![Vec::new(); nprocs];
        for i in 0..doms.naggs {
            let (ws, we) = doms.window(i, r);
            if ws >= we {
                continue;
            }
            // Stream positions of the window boundaries under MY view.
            let a_lo = view.stream_len_for_file(ws);
            let a_hi = view.stream_len_for_file(we);
            let lo = a_lo.max(offset);
            let hi = a_hi.min(offset + data.len() as u64);
            if lo >= hi {
                continue;
            }
            let mut msg = Vec::with_capacity(16 + (hi - lo) as usize);
            msg.extend_from_slice(&lo.to_le_bytes());
            msg.extend_from_slice(&(hi - lo).to_le_bytes());
            msg.extend_from_slice(&data[(lo - offset) as usize..(hi - offset) as usize]);
            payloads[doms.agg_rank(i, nprocs)] = msg;
        }
        let exchanged = exchange(rank, cfg, payloads)?;

        // Aggregator side: reconstruct placement from the stored views.
        if let Some(i) = my_agg {
            let (ws, we) = doms.window(i, r);
            if ws < we {
                let win_len = (we - ws) as usize;
                let cb = rank.alloc(win_len as u64)?;
                rank.note_mem_peak();
                let mut buf = vec![0u8; win_len];
                let mut dirty = ExtentSet::new();
                for (src, payload) in exchanged.iter().enumerate() {
                    if payload.is_empty() {
                        continue;
                    }
                    if payload.len() < 16 {
                        return Err(IoError::Usage("malformed view-based payload".into()));
                    }
                    let stream_lo = u64::from_le_bytes(payload[0..8].try_into().unwrap());
                    let len = u64::from_le_bytes(payload[8..16].try_into().unwrap());
                    if payload.len() as u64 != 16 + len {
                        return Err(IoError::Usage("view-based payload length mismatch".into()));
                    }
                    let bytes = &payload[16..];
                    let mut cursor = 0usize;
                    for (foff, flen) in views.views[src].map_range(stream_lo, len) {
                        debug_assert!(foff >= ws && foff + flen <= we, "view maps outside domain");
                        let at = (foff - ws) as usize;
                        buf[at..at + flen as usize]
                            .copy_from_slice(&bytes[cursor..cursor + flen as usize]);
                        cursor += flen as usize;
                        dirty.insert(foff, flen);
                    }
                    rank.charge_memcpy(len);
                }
                let pfs = file.pfs().clone();
                let fid = file.file_id();
                let io_start = rank.now();
                let mut written = 0u64;
                let mut done = rank.now();
                for &(off, len) in dirty.runs() {
                    let at = (off - ws) as usize;
                    let slice = &buf[at..at + len as usize];
                    let t = crate::retry::pfs_retry(rank, |rk| {
                        pfs.write_at(fid, rk.rank(), off, slice, rk.now())
                    })?;
                    done = done.max(t);
                    written += len;
                    rank.stats.io_writes += 1;
                    rank.stats.io_write_bytes += len;
                }
                if cfg.pipeline {
                    inflight.push_back((
                        mpisim::DeferredIo {
                            name: "vb_io_pipe",
                            submitted: io_start,
                            done,
                            bytes: written,
                        },
                        cb,
                    ));
                } else {
                    drop(cb);
                    rank.sync_to(done);
                }
            }
        }
    }
    // Drain the pipeline before the closing barrier.
    while let Some((h, _cb)) = inflight.pop_front() {
        rank.io_complete(h);
    }
    rank.barrier()?;
    Ok(())
}

/// View-based collective read: the registered views replace the entire
/// request-exchange phase of the two-phase read — each rank sends only a
/// 16-byte `(stream position, length)` header per aggregator, and the
/// aggregator derives both what to read from the file and how to slice the
/// responses from the stored views.
///
/// `CollectiveConfig::pipeline` is a no-op here: the read has no separate
/// request exchange to prefetch (the 16-byte headers *are* the request
/// phase), so there is no round k+1 traffic to overlap with round k's OST
/// service without reordering the response exchange the scatter depends
/// on. The classic [`crate::read_all_at`] path pipelines reads.
pub fn read_all_view_based(
    rank: &mut Rank,
    file: &mut File,
    views: &RegisteredViews,
    offset: u64,
    buf: &mut [u8],
    cfg: &CollectiveConfig,
) -> Result<()> {
    if !file.mode().readable() {
        return Err(IoError::Usage("file is not open for reading".into()));
    }
    if views.views.len() != rank.nprocs() {
        return Err(IoError::Usage(
            "registered views do not match the communicator".into(),
        ));
    }
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let view = views.views[me].clone();
    let extents = view.map_range(offset, buf.len() as u64);
    let local_min = extents.first().map_or(u64::MAX, |&(o, _)| o);
    let local_max = extents.last().map_or(0, |&(o, l)| o + l);

    let Some(doms) = compute_domains(rank, local_min, local_max, cfg)? else {
        rank.barrier()?;
        return Ok(());
    };
    let my_agg = doms.my_agg_index(me, nprocs);

    for r in 0..doms.rounds {
        // Phase 1: 16-byte interval headers only.
        let mut requests: Vec<Vec<u8>> = vec![Vec::new(); nprocs];
        // Remember my own stream interval per aggregator to scatter replies.
        let mut my_intervals: Vec<Option<(u64, u64)>> = vec![None; nprocs];
        for i in 0..doms.naggs {
            let (ws, we) = doms.window(i, r);
            if ws >= we {
                continue;
            }
            let a_lo = view.stream_len_for_file(ws);
            let a_hi = view.stream_len_for_file(we);
            let lo = a_lo.max(offset);
            let hi = a_hi.min(offset + buf.len() as u64);
            if lo >= hi {
                continue;
            }
            let a = doms.agg_rank(i, nprocs);
            let mut msg = Vec::with_capacity(16);
            msg.extend_from_slice(&lo.to_le_bytes());
            msg.extend_from_slice(&(hi - lo).to_le_bytes());
            requests[a] = msg;
            my_intervals[a] = Some((lo, hi));
        }
        let incoming = exchange(rank, cfg, requests)?;

        // Phase 2: aggregators read and answer from the stored views.
        let mut responses: Vec<Vec<u8>> = vec![Vec::new(); nprocs];
        if let Some(i) = my_agg {
            let (ws, we) = doms.window(i, r);
            if ws < we {
                // Parse intervals; derive wanted file runs from the views.
                let mut wanted = ExtentSet::new();
                let mut intervals: Vec<Option<(u64, u64)>> = vec![None; nprocs];
                for (src, payload) in incoming.iter().enumerate() {
                    if payload.is_empty() {
                        continue;
                    }
                    if payload.len() != 16 {
                        return Err(IoError::Usage("malformed view-based request".into()));
                    }
                    let lo = u64::from_le_bytes(payload[0..8].try_into().unwrap());
                    let len = u64::from_le_bytes(payload[8..16].try_into().unwrap());
                    intervals[src] = Some((lo, len));
                    for (o, l) in views.views[src].map_range(lo, len) {
                        wanted.insert(o, l);
                    }
                }
                if !wanted.is_empty() {
                    let win_len = (we - ws) as usize;
                    let _cb = rank.alloc(win_len as u64)?;
                    rank.note_mem_peak();
                    let pfs = file.pfs().clone();
                    let fid = file.file_id();
                    let mut wbuf = vec![0u8; win_len];
                    let mut done = rank.now();
                    if cfg.hedged_reads {
                        pfs.hedge_scope_begin(rank.rank());
                    }
                    for &(off, len) in wanted.runs() {
                        let at = (off - ws) as usize;
                        let dst = &mut wbuf[at..at + len as usize];
                        let t = crate::retry::pfs_retry(rank, |rk| {
                            if cfg.hedged_reads {
                                pfs.read_at_hedged(fid, rk.rank(), off, dst, rk.now())
                            } else {
                                pfs.read_at(fid, rk.rank(), off, dst, rk.now())
                            }
                        })?;
                        done = done.max(t);
                        rank.stats.io_reads += 1;
                        rank.stats.io_read_bytes += len;
                    }
                    rank.sync_to(done);
                    for (src, iv) in intervals.iter().enumerate() {
                        let Some((lo, len)) = iv else { continue };
                        let mut resp = Vec::with_capacity(*len as usize);
                        for (o, l) in views.views[src].map_range(*lo, *len) {
                            let at = (o - ws) as usize;
                            resp.extend_from_slice(&wbuf[at..at + l as usize]);
                        }
                        rank.charge_memcpy(*len);
                        responses[src] = resp;
                    }
                }
            }
        }
        let answers = exchange(rank, cfg, responses)?;

        // Scatter each aggregator's reply into my buffer.
        for (a, iv) in my_intervals.iter().enumerate() {
            let Some((lo, hi)) = iv else { continue };
            let payload = &answers[a];
            if payload.len() as u64 != hi - lo {
                return Err(IoError::Usage("view-based reply length mismatch".into()));
            }
            buf[(lo - offset) as usize..(hi - offset) as usize].copy_from_slice(payload);
        }
    }
    rank.barrier()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::Mode;
    use mpisim::{Datatype, Named, SimConfig};
    use pfs::{Pfs, PfsConfig};
    use std::sync::Arc;

    fn to_mpi(e: IoError) -> mpisim::MpiError {
        match e {
            IoError::Mpi(m) => m,
            other => mpisim::MpiError::InvalidDatatype(other.to_string()),
        }
    }

    fn write_both_ways(
        nprocs: usize,
        len_array: usize,
        cfg: CollectiveConfig,
    ) -> (Vec<u8>, Vec<u8>) {
        // The Fig. 2 interleaved pattern, written once with classic
        // two-phase and once view-based; files must be identical.
        let mut snaps = Vec::new();
        for view_based in [false, true] {
            let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
            let fs2 = Arc::clone(&fs);
            let cfg = cfg.clone();
            mpisim::run(nprocs, SimConfig::default(), move |rk| {
                let mut f = File::open(rk, &fs2, "/vb", Mode::WriteOnly).map_err(to_mpi)?;
                let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
                let ftype =
                    Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone())
                        .commit();
                f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                    .map_err(to_mpi)?;
                let data = vec![rk.rank() as u8 + 1; 12 * len_array];
                if view_based {
                    let views = register_views(rk, &f).map_err(to_mpi)?;
                    write_all_view_based(rk, &mut f, &views, 0, &data, &cfg).map_err(to_mpi)?;
                } else {
                    crate::collective::write_all_at(rk, &mut f, 0, &data, &cfg).map_err(to_mpi)?;
                }
                f.close(rk).map_err(to_mpi)?;
                Ok(())
            })
            .unwrap();
            let fid = fs.open("/vb").unwrap();
            snaps.push(fs.snapshot_file(fid).unwrap());
        }
        let b = snaps.pop().unwrap();
        let a = snaps.pop().unwrap();
        (a, b)
    }

    #[test]
    fn view_based_matches_two_phase() {
        let (two_phase, view_based) = write_both_ways(4, 8, CollectiveConfig::default());
        assert_eq!(two_phase, view_based);
    }

    #[test]
    fn view_based_matches_with_fewer_aggregators_and_rounds() {
        let cfg = CollectiveConfig {
            cb_nodes: Some(2),
            cb_buffer: Some(64),
            ..Default::default()
        };
        let (two_phase, view_based) = write_both_ways(3, 5, cfg);
        assert_eq!(two_phase, view_based);
    }

    #[test]
    fn view_based_pipelined_rounds_match_two_phase() {
        let cfg = CollectiveConfig {
            cb_nodes: Some(2),
            cb_buffer: Some(64),
            pipeline: true,
            ..Default::default()
        };
        let (two_phase, view_based) = write_both_ways(3, 5, cfg);
        assert_eq!(two_phase, view_based);
    }

    #[test]
    fn view_based_two_level_matches_with_topology() {
        let (two_phase, _) = write_both_ways(4, 8, CollectiveConfig::default());
        let cfg = CollectiveConfig {
            intra_agg: true,
            ..Default::default()
        };
        let nprocs = 4;
        let len_array = 8;
        let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let sim = SimConfig {
            topology: Some(mpisim::Topology::blocked(nprocs, 2)),
            ..Default::default()
        };
        mpisim::run(nprocs, sim, move |rk| {
            let mut f = File::open(rk, &fs2, "/vb2", Mode::WriteOnly).map_err(to_mpi)?;
            let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
            let ftype =
                Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone()).commit();
            f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                .map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; 12 * len_array];
            let views = register_views(rk, &f).map_err(to_mpi)?;
            write_all_view_based(rk, &mut f, &views, 0, &data, &cfg).map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/vb2").unwrap();
        assert_eq!(fs.snapshot_file(fid).unwrap(), two_phase);
    }

    #[test]
    fn view_based_moves_less_metadata() {
        // Count fabric bytes: the view-based exchange must ship fewer
        // total bytes (no per-extent headers) for a fragmented pattern.
        let nprocs = 4;
        let len_array = 64; // 64 extents of 12 B per rank per aggregator
        let mut fabric_bytes = Vec::new();
        for view_based in [false, true] {
            let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
            let rep = mpisim::run(nprocs, SimConfig::default(), move |rk| {
                let mut f = File::open(rk, &fs, "/m", Mode::WriteOnly).map_err(to_mpi)?;
                let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
                let ftype =
                    Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone())
                        .commit();
                f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                    .map_err(to_mpi)?;
                let data = vec![1u8; 12 * len_array];
                if view_based {
                    let views = register_views(rk, &f).map_err(to_mpi)?;
                    write_all_view_based(
                        rk,
                        &mut f,
                        &views,
                        0,
                        &data,
                        &CollectiveConfig::default(),
                    )
                    .map_err(to_mpi)?;
                } else {
                    crate::collective::write_all_at(
                        rk,
                        &mut f,
                        0,
                        &data,
                        &CollectiveConfig::default(),
                    )
                    .map_err(to_mpi)?;
                }
                f.close(rk).map_err(to_mpi)?;
                Ok(())
            })
            .unwrap();
            fabric_bytes.push(rep.fabric.bytes);
        }
        assert!(
            fabric_bytes[1] < fabric_bytes[0],
            "view-based ({}) must ship fewer bytes than two-phase ({})",
            fabric_bytes[1],
            fabric_bytes[0]
        );
    }

    #[test]
    fn empty_ranks_participate() {
        let fs = Pfs::new(3, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        mpisim::run(3, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/e", Mode::WriteOnly).map_err(to_mpi)?;
            let views = register_views(rk, &f).map_err(to_mpi)?;
            let data = if rk.rank() == 0 {
                vec![7u8; 24]
            } else {
                Vec::new()
            };
            write_all_view_based(rk, &mut f, &views, 0, &data, &CollectiveConfig::default())
                .map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/e").unwrap();
        assert_eq!(fs.snapshot_file(fid).unwrap(), vec![7u8; 24]);
    }

    #[test]
    fn view_based_read_roundtrips() {
        let nprocs = 4;
        let len_array = 8;
        // Write with classic two-phase, read back view-based.
        let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/vbr", Mode::ReadWrite).map_err(to_mpi)?;
            let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
            let ftype =
                Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone()).commit();
            f.set_view(rk, rk.rank() as u64 * 12, &etype, &ftype)
                .map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; 12 * len_array];
            crate::collective::write_all_at(rk, &mut f, 0, &data, &CollectiveConfig::default())
                .map_err(to_mpi)?;
            let views = register_views(rk, &f).map_err(to_mpi)?;
            let mut back = vec![0u8; 12 * len_array];
            read_all_view_based(
                rk,
                &mut f,
                &views,
                0,
                &mut back,
                &CollectiveConfig::default(),
            )
            .map_err(to_mpi)?;
            Ok(back)
        })
        .unwrap();
        for (r, back) in rep.results.iter().enumerate() {
            assert!(
                back.iter().all(|&b| b == r as u8 + 1),
                "rank {r} read bad data"
            );
        }
    }

    #[test]
    fn view_based_read_partial_range() {
        // Read only a middle slice of the stream through the view.
        let nprocs = 2;
        let fs = Pfs::new(nprocs, PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, SimConfig::default(), move |rk| {
            let mut f = File::open(rk, &fs2, "/vbp", Mode::ReadWrite).map_err(to_mpi)?;
            let etype = Datatype::contiguous(8, Datatype::named(Named::Byte)).commit();
            let ftype = Datatype::vector(6, 1, 2, etype.datatype().clone()).commit();
            f.set_view(rk, rk.rank() as u64 * 8, &etype, &ftype)
                .map_err(to_mpi)?;
            let data: Vec<u8> = (0..48).map(|i| (rk.rank() * 100 + i) as u8).collect();
            crate::collective::write_all_at(rk, &mut f, 0, &data, &CollectiveConfig::default())
                .map_err(to_mpi)?;
            let views = register_views(rk, &f).map_err(to_mpi)?;
            let mut slice = vec![0u8; 16];
            read_all_view_based(
                rk,
                &mut f,
                &views,
                10,
                &mut slice,
                &CollectiveConfig::default(),
            )
            .map_err(to_mpi)?;
            let expect: Vec<u8> = (10..26).map(|i| (rk.rank() * 100 + i) as u8).collect();
            assert_eq!(slice, expect, "rank {}", rk.rank());
            Ok(())
        });
        rep.unwrap();
    }

    #[test]
    fn serialized_views_roundtrip() {
        let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
        let ftype = Datatype::vector(5, 1, 3, etype.datatype().clone()).commit();
        let v = FileView::new(24, &etype, &ftype).unwrap();
        let w = FileView::deserialize(&v.serialize()).unwrap();
        for (pos, len) in [(0u64, 60u64), (7, 13), (59, 1)] {
            assert_eq!(v.map_range(pos, len), w.map_range(pos, len));
        }
        assert!(FileView::deserialize(&[1, 2, 3]).is_err());
    }
}
