//! File views: mapping a rank's linear I/O stream onto noncontiguous file
//! regions.
//!
//! `MPI_File_set_view(handle, disp, etype, filetype, …)` is the mechanism
//! OCIO forces on applications (§III): the *filetype* tiles the file from
//! `disp` onward, and the bytes a rank reads/writes land in the holes the
//! filetype describes. This module flattens a committed filetype once and
//! then maps `(stream position, length)` ranges to absolute file extents in
//! O(extents) time.

use crate::error::{IoError, Result};
use mpisim::Committed;

/// A resolved file view for one rank.
#[derive(Debug, Clone)]
pub struct FileView {
    /// Absolute displacement (bytes) where the tiling starts.
    disp: u64,
    /// Data extents of one filetype tile: `(offset-in-tile, len)`, in
    /// type-map order (monotone for file views, which MPI requires).
    tile: Vec<(u64, u64)>,
    /// Cumulative stream offset at the start of each tile entry (same
    /// length as `tile`); `prefix[i]` = bytes of data before entry `i`.
    prefix: Vec<u64>,
    /// Distance between consecutive tiles in the file.
    tile_extent: u64,
    /// Bytes of data per tile.
    tile_size: u64,
    /// Fast path: the view is the identity (contiguous bytes from `disp`).
    identity: bool,
}

impl FileView {
    /// The default view: contiguous bytes starting at offset 0.
    pub fn contiguous() -> FileView {
        FileView {
            disp: 0,
            tile: Vec::new(),
            prefix: Vec::new(),
            tile_extent: 0,
            tile_size: 0,
            identity: true,
        }
    }

    /// Build a view from a committed filetype. The `etype` is accepted for
    /// API fidelity (offsets are expressed in bytes here, so only its size
    /// participates in validation).
    pub fn new(disp: u64, etype: &Committed, filetype: &Committed) -> Result<FileView> {
        if etype.size() == 0 {
            return Err(IoError::Usage("etype must have nonzero size".into()));
        }
        if filetype.size() == 0 {
            return Err(IoError::Usage("filetype must have nonzero size".into()));
        }
        if !filetype.size().is_multiple_of(etype.size()) {
            return Err(IoError::Usage(format!(
                "filetype size {} is not a multiple of etype size {}",
                filetype.size(),
                etype.size()
            )));
        }
        let mut tile = Vec::with_capacity(filetype.extents().len());
        let mut prefix = Vec::with_capacity(filetype.extents().len());
        let mut acc = 0u64;
        let mut last_end: Option<u64> = None;
        for &(off, len) in filetype.extents() {
            if off < 0 {
                return Err(IoError::Usage(
                    "file views cannot contain negative displacements".into(),
                ));
            }
            let off = off as u64;
            if let Some(end) = last_end {
                if off < end {
                    return Err(IoError::Usage(
                        "filetype extents must be monotonically increasing".into(),
                    ));
                }
            }
            last_end = Some(off + len as u64);
            tile.push((off, len as u64));
            prefix.push(acc);
            acc += len as u64;
        }
        // An identity view (one extent at 0 covering the whole extent) gets
        // the fast path.
        let identity = disp == 0
            && tile.len() == 1
            && tile[0].0 == 0
            && tile[0].1 as usize == filetype.extent();
        Ok(FileView {
            disp,
            tile,
            prefix,
            tile_extent: filetype.extent() as u64,
            tile_size: acc,
            identity,
        })
    }

    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Bytes of data per tile (0 for the identity view).
    pub fn tile_size(&self) -> u64 {
        self.tile_size
    }

    /// Map a stream range `[pos, pos+len)` to absolute file extents,
    /// merged where adjacent. The result is sorted by file offset.
    pub fn map_range(&self, pos: u64, len: u64) -> Vec<(u64, u64)> {
        if len == 0 {
            return Vec::new();
        }
        if self.identity {
            return vec![(self.disp + pos, len)];
        }
        debug_assert!(self.tile_size > 0);
        let mut out: Vec<(u64, u64)> = Vec::new();
        let mut remaining = len;
        let mut tile_idx = pos / self.tile_size;
        let mut in_tile = pos % self.tile_size;
        // Find the first entry covering `in_tile` by binary search on the
        // prefix sums.
        let mut entry = match self.prefix.binary_search(&in_tile) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        while remaining > 0 {
            let (e_off, e_len) = self.tile[entry];
            let skip = in_tile - self.prefix[entry];
            let avail = e_len - skip;
            let take = avail.min(remaining);
            let file_off = self.disp + tile_idx * self.tile_extent + e_off + skip;
            match out.last_mut() {
                Some(last) if last.0 + last.1 == file_off => last.1 += take,
                _ => out.push((file_off, take)),
            }
            remaining -= take;
            in_tile += take;
            if in_tile == self.tile_size {
                tile_idx += 1;
                in_tile = 0;
                entry = 0;
            } else if take == avail {
                entry += 1;
            }
        }
        out
    }

    /// Serialize for transmission (view-based collective I/O registers
    /// every rank's view at the aggregators once, instead of shipping
    /// per-call offset lists).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(25 + self.tile.len() * 16);
        out.extend_from_slice(&self.disp.to_le_bytes());
        out.extend_from_slice(&self.tile_extent.to_le_bytes());
        out.push(self.identity as u8);
        out.extend_from_slice(&(self.tile.len() as u32).to_le_bytes());
        for &(o, l) in &self.tile {
            out.extend_from_slice(&o.to_le_bytes());
            out.extend_from_slice(&l.to_le_bytes());
        }
        out
    }

    /// Inverse of [`FileView::serialize`].
    pub fn deserialize(buf: &[u8]) -> Result<FileView> {
        let bad = || IoError::Usage("malformed serialized view".into());
        if buf.len() < 21 {
            return Err(bad());
        }
        let disp = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let tile_extent = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let identity = buf[16] != 0;
        let n = u32::from_le_bytes(buf[17..21].try_into().unwrap()) as usize;
        if buf.len() != 21 + n * 16 {
            return Err(bad());
        }
        let mut tile = Vec::with_capacity(n);
        let mut prefix = Vec::with_capacity(n);
        let mut acc = 0u64;
        for i in 0..n {
            let at = 21 + i * 16;
            let o = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
            let l = u64::from_le_bytes(buf[at + 8..at + 16].try_into().unwrap());
            tile.push((o, l));
            prefix.push(acc);
            acc += l;
        }
        Ok(FileView {
            disp,
            tile,
            prefix,
            tile_extent,
            tile_size: acc,
            identity,
        })
    }

    /// Total bytes of data available in `[0, stream_len)` given a file of
    /// `file_len` bytes — i.e., the stream position corresponding to EOF.
    /// Used to validate reads. Returns `None` when the view never reaches
    /// `file_len` (file shorter than `disp`).
    pub fn stream_len_for_file(&self, file_len: u64) -> u64 {
        if self.identity {
            return file_len.saturating_sub(self.disp);
        }
        if file_len <= self.disp {
            return 0;
        }
        let span = file_len - self.disp;
        let full_tiles = span / self.tile_extent.max(1);
        let rem = span - full_tiles * self.tile_extent;
        let mut bytes = full_tiles * self.tile_size;
        for (i, &(off, len)) in self.tile.iter().enumerate() {
            let _ = i;
            if off + len <= rem {
                bytes += len;
            } else if off < rem {
                bytes += rem - off;
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{Datatype, Named};

    fn paper_view(rank: u64, nprocs: usize, len_array: usize) -> FileView {
        // The paper's Fig. 2 view: etype = 12 contiguous bytes (int+double),
        // filetype = vector(LEN, 1, P) of etypes, disp = rank * 12.
        let etype = Datatype::contiguous(12, Datatype::named(Named::Byte)).commit();
        let ftype =
            Datatype::vector(len_array, 1, nprocs as isize, etype.datatype().clone()).commit();
        FileView::new(rank * 12, &etype, &ftype).unwrap()
    }

    #[test]
    fn identity_view_maps_directly() {
        let v = FileView::contiguous();
        assert!(v.is_identity());
        assert_eq!(v.map_range(100, 50), vec![(100, 50)]);
        assert_eq!(v.map_range(0, 0), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn paper_example_rank0() {
        let v = paper_view(0, 2, 3);
        // Rank 0 writes 36 bytes → blocks at 0, 24, 48.
        assert_eq!(v.map_range(0, 36), vec![(0, 12), (24, 12), (48, 12)]);
    }

    #[test]
    fn paper_example_rank1_displacement() {
        let v = paper_view(1, 2, 3);
        assert_eq!(v.map_range(0, 36), vec![(12, 12), (36, 12), (60, 12)]);
    }

    #[test]
    fn partial_block_access() {
        let v = paper_view(0, 2, 3);
        // 6 bytes starting at stream position 9: tail of block 0, head of
        // block 1.
        assert_eq!(v.map_range(9, 6), vec![(9, 3), (24, 3)]);
    }

    #[test]
    fn access_beyond_one_filetype_tile_wraps() {
        let v = paper_view(0, 2, 2); // tile: blocks at 0 and 24, extent 48...
                                     // tile data = 24 bytes; byte 24 of the stream is block 0 of tile 1.
        let tile_extent = v.tile_extent;
        assert_eq!(v.map_range(24, 12), vec![(tile_extent, 12)]);
    }

    #[test]
    fn adjacent_extents_merge() {
        // filetype with two adjacent runs: (0,4) and (4,4) — map_range must
        // emit one merged extent.
        let ft = Datatype::indexed(vec![4, 4], vec![0, 4], Datatype::named(Named::Byte))
            .unwrap()
            .commit();
        let et = Datatype::named(Named::Byte).commit();
        let v = FileView::new(0, &et, &ft).unwrap();
        assert_eq!(v.map_range(0, 8), vec![(0, 8)]);
    }

    #[test]
    fn non_monotone_filetype_rejected() {
        let ft = Datatype::indexed(vec![1, 1], vec![4, 0], Datatype::named(Named::Byte))
            .unwrap()
            .commit();
        let et = Datatype::named(Named::Byte).commit();
        assert!(FileView::new(0, &et, &ft).is_err());
    }

    #[test]
    fn filetype_not_multiple_of_etype_rejected() {
        let et = Datatype::named(Named::Double).commit(); // 8 bytes
        let ft = Datatype::contiguous(3, Datatype::named(Named::Byte)).commit(); // 3 bytes
        assert!(FileView::new(0, &et, &ft).is_err());
    }

    #[test]
    fn stream_len_for_file_counts_visible_bytes() {
        let v = paper_view(0, 2, 2); // blocks (0,12),(24,12); extent 36?
                                     // extent of vector(2,1,2) of 12-byte etype = 12*(2+1)=36.
        assert_eq!(v.stream_len_for_file(0), 0);
        assert_eq!(v.stream_len_for_file(6), 6);
        assert_eq!(v.stream_len_for_file(12), 12);
        assert_eq!(v.stream_len_for_file(24), 12);
        assert_eq!(v.stream_len_for_file(30), 18);
        assert_eq!(v.stream_len_for_file(36), 24);
        assert_eq!(v.stream_len_for_file(48), 36);
    }

    #[test]
    fn identity_stream_len_respects_disp() {
        let et = Datatype::named(Named::Byte).commit();
        let ft = Datatype::contiguous(1, Datatype::named(Named::Byte)).commit();
        let v = FileView::new(100, &et, &ft).unwrap();
        // Not the fast-path identity (disp != 0), but semantically linear.
        assert_eq!(v.map_range(0, 10), vec![(100, 10)]);
        assert_eq!(v.stream_len_for_file(100), 0);
        assert_eq!(v.stream_len_for_file(110), 10);
    }

    #[test]
    fn large_positions_do_not_overflow() {
        let v = paper_view(0, 1024, 1 << 20);
        let far = (1u64 << 20) * 12 - 12;
        let got = v.map_range(far, 12);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 12);
    }
}
