//! Workspace root crate: re-exports the library stack for the examples and
//! integration tests. See `README.md` and `DESIGN.md`.

pub use mpiio;
pub use mpisim;
pub use pfs;
pub use tcio;
pub use workloads;
