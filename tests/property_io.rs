//! Property-style tests on the core I/O invariants, driven by a seeded
//! deterministic generator (the build environment is offline, so these are
//! hand-rolled rather than proptest-based — every case is reproducible from
//! its seed printed in the assertion message):
//!
//! * any set of disjoint positioned TCIO writes produces the same file as
//!   a reference byte-array model, regardless of segment size, process
//!   count, and write order;
//! * lazy TCIO reads return exactly the bytes of the file model;
//! * the two-phase collective write equals the model too;
//! * datatype pack→unpack is the identity on the type's footprint;
//! * the file view maps ranges exactly like a naive per-byte walk.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use tcio::{TcioConfig, TcioFile, TcioMode};

fn pick(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
    lo + rng.next_u64() % (hi - lo)
}

/// A write plan: per rank, a list of disjoint (offset, data) blocks.
/// Generated so that blocks never overlap across ranks either.
#[derive(Debug, Clone)]
struct Plan {
    nprocs: usize,
    segment: u64,
    /// (rank, offset, len, fill)
    blocks: Vec<(usize, u64, usize, u8)>,
}

/// Mirror of the seed suite's proptest strategy: slot the file into fixed
/// 32-byte cells; each cell is owned by at most one block, which guarantees
/// global disjointness while still exercising arbitrary offsets/strides.
fn random_plan(seed: u64) -> Plan {
    let mut rng = StdRng::seed_from_u64(seed);
    let nprocs = pick(&mut rng, 2, 5) as usize;
    let segment = pick(&mut rng, 8, 100);
    let ncells = pick(&mut rng, 1, 40) as usize;
    let mut used: BTreeMap<usize, ()> = BTreeMap::new();
    let mut blocks = Vec::new();
    for i in 0..ncells {
        let cell = pick(&mut rng, 0, 64) as usize;
        let span = pick(&mut rng, 1, 3) as usize;
        // Skip blocks that would overlap already-claimed cells.
        if (cell..cell + span).any(|c| used.contains_key(&c)) {
            continue;
        }
        for c in cell..cell + span {
            used.insert(c, ());
        }
        let rank = i % nprocs;
        let off = cell as u64 * 32;
        let len = span * 32 - (i % 7).min(span * 32 - 1); // ragged ends
        blocks.push((rank, off, len, (i % 251) as u8 + 1));
    }
    Plan {
        nprocs,
        segment,
        blocks,
    }
}

/// Apply the plan to a plain byte-array model.
fn model_file(plan: &Plan) -> Vec<u8> {
    let end = plan
        .blocks
        .iter()
        .map(|&(_, o, l, _)| o + l as u64)
        .max()
        .unwrap_or(0);
    let mut file = vec![0u8; end as usize];
    for &(_, off, len, fill) in &plan.blocks {
        for i in 0..len {
            file[off as usize + i] = fill.wrapping_add(i as u8);
        }
    }
    file
}

fn block_data(len: usize, fill: u8) -> Vec<u8> {
    (0..len).map(|i| fill.wrapping_add(i as u8)).collect()
}

fn run_tcio_plan(plan: &Plan) -> Vec<u8> {
    let fs = pfs::Pfs::new(plan.nprocs, pfs::PfsConfig::default()).unwrap();
    let fs2 = Arc::clone(&fs);
    let plan2 = plan.clone();
    mpisim::run(plan.nprocs, mpisim::SimConfig::default(), move |rk| {
        let file_end = plan2
            .blocks
            .iter()
            .map(|&(_, o, l, _)| o + l as u64)
            .max()
            .unwrap_or(0);
        let cfg =
            TcioConfig::for_file_size_with_segment(file_end.max(1), rk.nprocs(), plan2.segment);
        let mut f = TcioFile::open(rk, &fs2, "/prop", TcioMode::Write, cfg)
            .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        for &(rank, off, len, fill) in &plan2.blocks {
            if rank == rk.rank() {
                f.write_at(rk, off, &block_data(len, fill))
                    .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            }
        }
        f.close(rk)
            .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        Ok(())
    })
    .unwrap();
    let fid = fs.open("/prop").unwrap();
    fs.snapshot_file(fid).unwrap()
}

/// Run the plan through one of the four write stacks under a node
/// topology and return the resulting PFS file contents.
fn run_plan_variant(plan: &Plan, ppn: usize, variant: &'static str) -> Vec<u8> {
    fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
        mpisim::MpiError::InvalidDatatype(e.to_string())
    }
    let fs = pfs::Pfs::new(plan.nprocs, pfs::PfsConfig::default()).unwrap();
    let sim = mpisim::SimConfig {
        topology: Some(mpisim::Topology::blocked(plan.nprocs, ppn)),
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let plan2 = plan.clone();
    mpisim::run(plan.nprocs, sim, move |rk| {
        match variant {
            "tcio" => {
                let file_end = plan2
                    .blocks
                    .iter()
                    .map(|&(_, o, l, _)| o + l as u64)
                    .max()
                    .unwrap_or(0);
                let cfg = TcioConfig::for_file_size_with_segment(
                    file_end.max(1),
                    rk.nprocs(),
                    plan2.segment,
                );
                let mut f =
                    TcioFile::open(rk, &fs2, "/diff", TcioMode::Write, cfg).map_err(to_mpi)?;
                for &(rank, off, len, fill) in &plan2.blocks {
                    if rank == rk.rank() {
                        f.write_at(rk, off, &block_data(len, fill))
                            .map_err(to_mpi)?;
                    }
                }
                f.close(rk).map_err(to_mpi)?;
            }
            "indep" => {
                let mut f =
                    mpiio::File::open(rk, &fs2, "/diff", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
                for &(rank, off, len, fill) in &plan2.blocks {
                    if rank == rk.rank() {
                        f.write_at(rk, off, &block_data(len, fill))
                            .map_err(to_mpi)?;
                    }
                }
                f.close(rk).map_err(to_mpi)?;
            }
            _ => {
                let ccfg = mpiio::CollectiveConfig {
                    intra_agg: variant == "ocio_intra",
                    ..Default::default()
                };
                let mut f =
                    mpiio::File::open(rk, &fs2, "/diff", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
                for round in 0..plan2.blocks.len() {
                    let (rank, off, len, fill) = plan2.blocks[round];
                    let (o, data) = if rank == rk.rank() {
                        (off, block_data(len, fill))
                    } else {
                        (0, Vec::new())
                    };
                    mpiio::write_all_at(rk, &mut f, o, &data, &ccfg).map_err(to_mpi)?;
                }
                f.close(rk).map_err(to_mpi)?;
            }
        }
        Ok(())
    })
    .unwrap();
    let fid = fs.open("/diff").unwrap();
    fs.snapshot_file(fid).unwrap()
}

/// Run the plan through one (method, req_agg, pipeline) ablation cell
/// under a node topology: write every block collectively (or through
/// TCIO), then read every block back collectively, and return the PFS
/// bytes plus the read-back bytes (concatenated in block order).
fn run_plan_ablation(
    plan: &Plan,
    ppn: usize,
    method: &'static str,
    req_agg: bool,
    pipeline: bool,
) -> (Vec<u8>, Vec<u8>) {
    fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
        mpisim::MpiError::InvalidDatatype(e.to_string())
    }
    let fs = pfs::Pfs::new(plan.nprocs, pfs::PfsConfig::default()).unwrap();
    let sim = mpisim::SimConfig {
        topology: Some(mpisim::Topology::blocked(plan.nprocs, ppn)),
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let plan2 = plan.clone();
    let reads = mpisim::run(plan.nprocs, sim, move |rk| {
        // Small collective buffer so multi-block plans take several
        // rounds — otherwise the pipeline axis would never engage.
        let ccfg = mpiio::CollectiveConfig {
            cb_buffer: Some(64),
            req_agg,
            pipeline,
            ..Default::default()
        };
        match method {
            "tcio" => {
                let file_end = plan2
                    .blocks
                    .iter()
                    .map(|&(_, o, l, _)| o + l as u64)
                    .max()
                    .unwrap_or(0);
                let cfg = TcioConfig {
                    pipeline_drain: pipeline,
                    ..TcioConfig::for_file_size_with_segment(
                        file_end.max(1),
                        rk.nprocs(),
                        plan2.segment,
                    )
                };
                let mut f =
                    TcioFile::open(rk, &fs2, "/abl", TcioMode::Write, cfg).map_err(to_mpi)?;
                for &(rank, off, len, fill) in &plan2.blocks {
                    if rank == rk.rank() {
                        f.write_at(rk, off, &block_data(len, fill))
                            .map_err(to_mpi)?;
                    }
                }
                f.close(rk).map_err(to_mpi)?;
            }
            _ => {
                let mut f =
                    mpiio::File::open(rk, &fs2, "/abl", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
                for &(rank, off, len, fill) in &plan2.blocks {
                    let (o, data) = if rank == rk.rank() {
                        (off, block_data(len, fill))
                    } else {
                        (0, Vec::new())
                    };
                    mpiio::write_all_at(rk, &mut f, o, &data, &ccfg).map_err(to_mpi)?;
                }
                f.close(rk).map_err(to_mpi)?;
            }
        }
        // Read-back through the collective read path under the same
        // ablation config; every rank re-reads its own blocks.
        let mut f = mpiio::File::open(rk, &fs2, "/abl", mpiio::Mode::ReadOnly).map_err(to_mpi)?;
        let mut mine = Vec::new();
        for &(rank, off, len, _) in &plan2.blocks {
            let (o, mut buf) = if rank == rk.rank() {
                (off, vec![0u8; len])
            } else {
                (0, Vec::new())
            };
            mpiio::read_all_at(rk, &mut f, o, &mut buf, &ccfg).map_err(to_mpi)?;
            mine.extend_from_slice(&buf);
        }
        f.close(rk).map_err(to_mpi)?;
        Ok(mine)
    })
    .unwrap();
    let fid = fs.open("/abl").unwrap();
    let bytes = fs.snapshot_file(fid).unwrap();
    // Stitch the per-rank read-backs into block order.
    let mut cursors = vec![0usize; plan.nprocs];
    let mut readback = Vec::new();
    for &(rank, _, len, _) in &plan.blocks {
        let c = cursors[rank];
        readback.extend_from_slice(&reads.results[rank][c..c + len]);
        cursors[rank] = c + len;
    }
    (bytes, readback)
}

#[test]
fn ablation_matrix_is_byte_identical_across_random_plans() {
    // The tentpole differential property: for ~50 seeded plans and a
    // seeded node placement, every combination of the two ablation knobs
    // — request aggregation and the round pipeline — must produce PFS
    // bytes identical to the flat run (and to the byte-array model), and
    // the collective read-back under the same knobs must return exactly
    // the bytes each rank wrote. The knobs are pure virtual-time
    // features; any byte drift is a merging or pipelining bug.
    for seed in 400..450u64 {
        let plan = random_plan(seed);
        if plan.blocks.is_empty() {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAB1A);
        let ppn = pick(&mut rng, 1, plan.nprocs as u64 + 1) as usize;
        let want = model_file(&plan);
        let want_readback: Vec<u8> = plan
            .blocks
            .iter()
            .flat_map(|&(_, _, len, fill)| block_data(len, fill))
            .collect();
        for method in ["tcio", "ocio"] {
            for (req_agg, pipeline) in [(false, false), (true, false), (false, true), (true, true)]
            {
                let (bytes, readback) = run_plan_ablation(&plan, ppn, method, req_agg, pipeline);
                assert_eq!(
                    bytes, want,
                    "seed {seed} ppn {ppn} {method} req_agg={req_agg} \
                     pipeline={pipeline}: file bytes diverged: {plan:?}"
                );
                assert_eq!(
                    readback, want_readback,
                    "seed {seed} ppn {ppn} {method} req_agg={req_agg} \
                     pipeline={pipeline}: read-back diverged: {plan:?}"
                );
            }
        }
    }
}

#[test]
fn all_write_stacks_agree_under_random_topologies() {
    // Differential suite for the node-aware paths: for each seeded plan
    // and a seeded node placement, TCIO (node-aware L2 owner order), flat
    // two-phase, two-phase with intra-node pre-aggregation, and plain
    // independent writes must all produce byte-identical PFS contents —
    // equal to the byte-array model. Topology and the two-level exchange
    // are pure cost-model features; any byte drift is a routing bug.
    for seed in 300..350u64 {
        let plan = random_plan(seed);
        if plan.blocks.is_empty() {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7090);
        let ppn = pick(&mut rng, 1, plan.nprocs as u64 + 1) as usize;
        let want = model_file(&plan);
        for variant in ["tcio", "ocio", "ocio_intra", "indep"] {
            let got = run_plan_variant(&plan, ppn, variant);
            assert_eq!(got, want, "seed {seed} ppn {ppn} {variant}: {plan:?}");
        }
    }
}

#[test]
fn tcio_writes_match_byte_model() {
    for seed in 0..32u64 {
        let plan = random_plan(seed);
        if plan.blocks.is_empty() {
            continue;
        }
        let got = run_tcio_plan(&plan);
        let want = model_file(&plan);
        assert_eq!(got, want, "seed {seed}: {plan:?}");
    }
}

#[test]
fn tcio_lazy_reads_return_model_bytes() {
    for seed in 100..124u64 {
        let plan = random_plan(seed);
        if plan.blocks.is_empty() {
            continue;
        }
        let fs = pfs::Pfs::new(plan.nprocs, pfs::PfsConfig::default()).unwrap();
        let model = model_file(&plan);
        {
            let fid = fs.create("/prop").unwrap();
            fs.write_at(fid, 0, 0, &model, 0.0).unwrap();
        }
        let fs2 = Arc::clone(&fs);
        let plan2 = plan.clone();
        let model2 = model.clone();
        mpisim::run(plan.nprocs, mpisim::SimConfig::default(), move |rk| {
            let cfg = TcioConfig::for_file_size_with_segment(
                model2.len().max(1) as u64,
                rk.nprocs(),
                plan2.segment,
            );
            let mut bufs: Vec<Vec<u8>> = plan2
                .blocks
                .iter()
                .filter(|&&(r, _, _, _)| r == rk.rank())
                .map(|&(_, _, len, _)| vec![0u8; len])
                .collect();
            {
                let mut f = TcioFile::open(rk, &fs2, "/prop", TcioMode::Read, cfg)
                    .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
                let mut it = bufs.iter_mut();
                for &(rank, off, _len, _) in &plan2.blocks {
                    if rank == rk.rank() {
                        let buf = it.next().unwrap();
                        f.read_at(rk, off, buf)
                            .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
                    }
                }
                f.fetch(rk)
                    .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
                f.close(rk)
                    .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            }
            // Verify against the model.
            let mut it = bufs.iter();
            for &(rank, off, len, _) in &plan2.blocks {
                if rank == rk.rank() {
                    let got = it.next().unwrap();
                    let want = &model2[off as usize..off as usize + len];
                    if got.as_slice() != want {
                        return Err(mpisim::MpiError::InvalidDatatype(format!(
                            "read mismatch at offset {off}"
                        )));
                    }
                }
            }
            Ok(())
        })
        .unwrap();
    }
}

#[test]
fn collective_write_matches_byte_model() {
    for seed in 200..224u64 {
        let plan = random_plan(seed);
        if plan.blocks.is_empty() {
            continue;
        }
        let fs = pfs::Pfs::new(plan.nprocs, pfs::PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let plan2 = plan.clone();
        // One collective call per block round: all ranks participate each
        // round; ranks without a block contribute empty requests.
        let rounds = plan.blocks.len();
        mpisim::run(plan.nprocs, mpisim::SimConfig::default(), move |rk| {
            let mut f = mpiio::File::open(rk, &fs2, "/coll", mpiio::Mode::WriteOnly)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            for round in 0..rounds {
                let (rank, off, len, fill) = plan2.blocks[round];
                let (o, data) = if rank == rk.rank() {
                    (off, block_data(len, fill))
                } else {
                    (0, Vec::new())
                };
                mpiio::write_all_at(rk, &mut f, o, &data, &mpiio::CollectiveConfig::default())
                    .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            }
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/coll").unwrap();
        assert_eq!(
            fs.snapshot_file(fid).unwrap(),
            model_file(&plan),
            "seed {seed}: {plan:?}"
        );
    }
}

#[test]
fn datatype_pack_unpack_identity() {
    // Exhaustive over the seed suite's parameter ranges.
    for count in 1usize..5 {
        for blocklen in 1usize..4 {
            for stride in 1isize..6 {
                for instances in 1usize..3 {
                    if stride < blocklen as isize {
                        continue;
                    }
                    let t = mpisim::Datatype::vector(
                        count,
                        blocklen,
                        stride,
                        mpisim::Datatype::named(mpisim::Named::Int),
                    )
                    .commit();
                    let footprint = t.extent() * instances;
                    let src: Vec<u8> = (0..footprint).map(|i| (i % 251) as u8).collect();
                    let packed = t.pack(&src, instances).unwrap();
                    assert_eq!(packed.len(), t.size() * instances);
                    let mut dst = vec![0u8; footprint];
                    t.unpack(&packed, &mut dst, instances).unwrap();
                    // Every byte in the type map must round-trip; gaps stay 0.
                    for inst in 0..instances {
                        let base = inst * t.extent();
                        for &(off, len) in t.extents() {
                            let at = base + off as usize;
                            assert_eq!(
                                &dst[at..at + len],
                                &src[at..at + len],
                                "count={count} blocklen={blocklen} stride={stride}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn file_view_matches_naive_walk() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x71E3 ^ seed);
        let nblocks = pick(&mut rng, 1, 6) as usize;
        let blockbytes = pick(&mut rng, 1, 16) as usize;
        let nprocs = pick(&mut rng, 1, 5) as usize;
        let rank = pick(&mut rng, 0, nprocs as u64) as usize;
        let pos = pick(&mut rng, 0, 64);
        let len = pick(&mut rng, 0, 96);

        let etype =
            mpisim::Datatype::contiguous(blockbytes, mpisim::Datatype::named(mpisim::Named::Byte))
                .commit();
        let ftype = mpisim::Datatype::vector(nblocks, 1, nprocs as isize, etype.datatype().clone())
            .commit();
        let disp = (rank * blockbytes) as u64;
        let view = mpiio::FileView::new(disp, &etype, &ftype).unwrap();
        let tile_data = (nblocks * blockbytes) as u64;
        if len > 0 && pos + len > 4 * tile_data {
            continue;
        }

        // Naive oracle: walk the stream byte by byte.
        let byte_at = |stream: u64| -> u64 {
            let tile = stream / tile_data;
            let within = stream % tile_data;
            let block = within / blockbytes as u64;
            let inblock = within % blockbytes as u64;
            disp + tile * (ftype.extent() as u64) + block * (blockbytes * nprocs) as u64 + inblock
        };
        let mut expected: Vec<u64> = (pos..pos + len).map(byte_at).collect();
        let got = view.map_range(pos, len);
        // Flatten the mapped extents back into byte offsets.
        let mut flat = Vec::new();
        for (o, l) in got.iter() {
            for i in 0..*l {
                flat.push(o + i);
            }
        }
        expected.sort_unstable();
        flat.sort_unstable();
        assert_eq!(flat, expected, "seed {seed}");
    }
}

#[test]
fn extent_set_matches_boolean_model() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0xE47E ^ seed);
        let nops = pick(&mut rng, 1, 60) as usize;
        let ops: Vec<(u64, u64)> = (0..nops)
            .map(|_| (pick(&mut rng, 0, 200), pick(&mut rng, 1, 40)))
            .collect();
        let mut set = mpiio::ExtentSet::new();
        let mut model = vec![false; 256];
        for &(off, len) in &ops {
            set.insert(off, len);
            for i in off..(off + len).min(256) {
                model[i as usize] = true;
            }
        }
        // Coverage must match the model byte for byte.
        let covered: u64 = model.iter().filter(|&&b| b).count() as u64;
        assert_eq!(set.covered(), covered, "seed {seed}");
        // Runs must be maximal (no two adjacent runs).
        let runs = set.runs();
        for w in runs.windows(2) {
            assert!(w[0].0 + w[0].1 < w[1].0, "runs {w:?} not coalesced");
        }
        // Spot-check contains() against the model.
        for probe in [0u64, 13, 55, 128, 199] {
            assert_eq!(set.contains(probe, 1), model[probe as usize], "seed {seed}");
        }
    }
}

/// A random fault plan drawing from every family, including the
/// crash-stop and silent-corruption ones.
fn random_fault_plan(seed: u64) -> chaos::FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plan = chaos::FaultPlan::new(pick(&mut rng, 1, 1 << 20));
    for _ in 0..pick(&mut rng, 1, 9) {
        let from = pick(&mut rng, 0, 1000) as f64 * 1e-4;
        let until = from + pick(&mut rng, 1, 1000) as f64 * 1e-4;
        let rank = pick(&mut rng, 0, 4) as usize;
        let ost = pick(&mut rng, 0, 4) as usize;
        let factor = 1.0 + pick(&mut rng, 0, 40) as f64 / 10.0;
        let fault = match pick(&mut rng, 0, 10) {
            0 => chaos::Fault::OstSlowdown {
                ost,
                factor,
                from,
                until,
            },
            1 => chaos::Fault::OstOutage { ost, from, until },
            2 => chaos::Fault::RequestOverhead {
                extra: pick(&mut rng, 0, 500) as f64 * 1e-6,
                from,
                until,
            },
            3 => chaos::Fault::LockStorm { from, until },
            4 => chaos::Fault::MessageDelay {
                delay: pick(&mut rng, 0, 200) as f64 * 1e-6,
                from,
                until,
            },
            5 => chaos::Fault::ConnFlush { at: from },
            6 => chaos::Fault::RankStall { rank, from, until },
            7 => chaos::Fault::RankSlowdown {
                rank,
                factor,
                from,
                until,
            },
            8 => chaos::Fault::RankCrash { rank, at: from },
            _ => chaos::Fault::SilentCorruption {
                rate: pick(&mut rng, 0, 101) as f64 / 100.0,
                from,
                until,
            },
        };
        plan = plan.with(fault);
    }
    plan
}

/// Evaluate every chaos query over a seeded grid of `(rank, ost, site, t)`
/// points and fold the answers into one fingerprint vector.
fn chaos_fingerprint(e: &chaos::ChaosEngine, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5F1E);
    let mut out = Vec::new();
    for _ in 0..200 {
        let r = pick(&mut rng, 0, 4) as usize;
        let ost = pick(&mut rng, 0, 4) as usize;
        let t = pick(&mut rng, 0, 2500) as f64 * 1e-4;
        let site = rng.next_u64();
        out.push(e.ost_factor(ost, t).to_bits());
        out.push(e.ost_outage_until(ost, t).map_or(0, f64::to_bits));
        out.push(e.extra_request_overhead(t).to_bits());
        out.push(e.lock_storm(t) as u64);
        out.push(e.message_delay(t).to_bits());
        out.push(e.conn_flush_generation(t));
        out.push(e.rank_stall_until(r, t).map_or(0, f64::to_bits));
        out.push(e.is_stalled(r, t) as u64);
        out.push(e.stall_ahead(r, t) as u64);
        out.push(e.rank_slowdown(r, t).to_bits());
        out.push(e.crash_at(r).map_or(0, f64::to_bits));
        out.push(e.crashed(r, t) as u64);
        out.push(e.crash_ahead(r) as u64);
        out.push(e.any_crash() as u64);
        out.push(e.corruption_rate(t).to_bits());
        out.push(e.corrupts(site, t) as u64);
        out.push(e.unit_hash(site).to_bits());
    }
    out
}

#[test]
fn chaos_queries_are_pure_functions_of_site_and_time() {
    // The whole failure-agreement design (survivor lists, buddy election,
    // recovery responsibility) rests on every rank being able to evaluate
    // the fault plan independently and get the same answer. So for 50
    // random plans spanning all ten fault families: re-asking, rebuilding
    // the plan from its seed, and asking concurrently from racing threads
    // must all produce bit-identical answers.
    for seed in 0..50u64 {
        let engine = random_fault_plan(seed).build().unwrap();
        let base = chaos_fingerprint(&engine, seed);
        assert_eq!(
            base,
            chaos_fingerprint(&engine, seed),
            "seed {seed}: repeated evaluation diverged"
        );
        let rebuilt = random_fault_plan(seed).build().unwrap();
        assert_eq!(
            base,
            chaos_fingerprint(&rebuilt, seed),
            "seed {seed}: rebuilt engine diverged"
        );
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let e = Arc::clone(&engine);
                std::thread::spawn(move || chaos_fingerprint(&e, seed))
            })
            .collect();
        for h in threads {
            assert_eq!(
                base,
                h.join().unwrap(),
                "seed {seed}: concurrent evaluation diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Critical-path conservation property
// ---------------------------------------------------------------------------

/// A fault plan drawn only from the non-fatal families: every one perturbs
/// virtual timing (the thing the critical path must still conserve) without
/// aborting the run or corrupting data.
fn benign_fault_plan(seed: u64) -> chaos::FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBE9F);
    let mut plan = chaos::FaultPlan::new(pick(&mut rng, 1, 1 << 20));
    for _ in 0..pick(&mut rng, 1, 5) {
        let from = pick(&mut rng, 0, 100) as f64 * 1e-4;
        let rank = pick(&mut rng, 0, 4) as usize;
        let ost = pick(&mut rng, 0, 4) as usize;
        let fault = match pick(&mut rng, 0, 6) {
            0 => chaos::Fault::OstSlowdown {
                ost,
                factor: 1.0 + pick(&mut rng, 0, 30) as f64 / 10.0,
                from,
                until: from + 0.05,
            },
            // Short outage: well inside the retry budget.
            1 => chaos::Fault::OstOutage {
                ost,
                from,
                until: from + 0.005,
            },
            2 => chaos::Fault::RequestOverhead {
                extra: pick(&mut rng, 0, 300) as f64 * 1e-6,
                from,
                until: from + 0.05,
            },
            3 => chaos::Fault::MessageDelay {
                delay: pick(&mut rng, 0, 100) as f64 * 1e-6,
                from,
                until: from + 0.05,
            },
            4 => chaos::Fault::RankStall {
                rank,
                from,
                until: from + 0.003,
            },
            _ => chaos::Fault::RankSlowdown {
                rank,
                factor: 1.0 + pick(&mut rng, 0, 20) as f64 / 10.0,
                from,
                until: from + 0.05,
            },
        };
        plan = plan.with(fault);
    }
    plan
}

/// Structural invariants of one computed critical path.
fn assert_path_conserved(seed: u64, cp: &insight::CriticalPath, makespan: f64) {
    assert!(!cp.truncated, "seed {seed}: walker hit its iteration cap");
    assert!(
        (cp.makespan - makespan).abs() <= 1e-9 * makespan.max(1.0),
        "seed {seed}: analyzer makespan {} vs report {makespan}",
        cp.makespan
    );
    assert!(
        cp.residual().abs() <= 1e-9 * makespan.max(1.0),
        "seed {seed}: path breakdown loses {}s of the makespan",
        cp.residual()
    );
    // Segments tile [0, makespan] without gaps or overlap, and every
    // same-rank (Seq) hop really stays on one rank.
    let segs = &cp.segments;
    assert!(!segs.is_empty(), "seed {seed}: empty path on a real run");
    assert!(segs[0].start.abs() <= 1e-9);
    assert!((segs[segs.len() - 1].end - cp.makespan).abs() <= 1e-9 * makespan.max(1.0));
    for w in segs.windows(2) {
        assert!(
            (w[0].end - w[1].start).abs() <= 1e-9 * makespan.max(1.0),
            "seed {seed}: gap between path segments at {}",
            w[0].end
        );
        if matches!(w[0].link_to_next, insight::Link::Seq) {
            assert_eq!(
                w[0].rank, w[1].rank,
                "seed {seed}: Seq link crosses ranks at {}",
                w[0].end
            );
        }
    }
}

#[test]
fn critical_path_conservation_over_random_runs() {
    // ≥25 seeded configurations across {Table-I synth, ART} × {flat,
    // blocked topology} × {fault-free, benign chaos}: the critical path
    // must tile the makespan exactly (no lost or double-counted virtual
    // time) and stay causally connected, whatever the run shape.
    for seed in 0..28u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(51));
        let nprocs = pick(&mut rng, 2, 9) as usize;
        let topo = (seed % 3 == 0).then(|| {
            let ppn = [1, 2, 4][(seed as usize / 3) % 3];
            mpisim::Topology::blocked(nprocs, ppn)
        });
        let engine = (seed % 3 == 1).then(|| benign_fault_plan(seed).build().unwrap());

        let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
        if let Some(e) = &engine {
            fs.attach_chaos(Arc::clone(e)).unwrap();
        }
        let sim = mpisim::SimConfig {
            trace: true,
            topology: topo.clone(),
            chaos: engine,
            ..Default::default()
        };
        let fs2 = Arc::clone(&fs);
        let use_art = seed % 2 == 1;
        let len = pick(&mut rng, 32, 129) as usize;
        let rep = mpisim::run(nprocs, sim, move |rk| {
            if use_art {
                let cfg = workloads::art::ArtConfig {
                    num_segments: 2 * rk.nprocs(),
                    mu: 6.0,
                    sigma: 1.0,
                    ..workloads::art::ArtConfig::default()
                };
                workloads::art::dump(rk, &fs2, &cfg, workloads::art::ArtMethod::Tcio, "/cp_art")
                    .map(|_| ())
                    .map_err(workloads::WlError::into_mpi)
            } else {
                let p = workloads::synthetic::SynthParams::with_types("i,d", len, 1)
                    .expect("valid params");
                workloads::synthetic::write_tcio(rk, &fs2, &p, "/cp_synth", None)
                    .map_err(workloads::WlError::into_mpi)?;
                workloads::synthetic::read_tcio(rk, &fs2, &p, "/cp_synth", None)
                    .map(|_| ())
                    .map_err(workloads::WlError::into_mpi)
            }
        })
        .unwrap_or_else(|e| panic!("seed {seed}: run failed: {e:?}"));

        let mut an = insight::Analyzer::new(&rep.traces);
        if let Some(t) = &topo {
            an = an.with_topology(t);
        }
        let cp = an.critical_path();
        assert_path_conserved(seed, &cp, rep.makespan);
    }
}

/// Everything observable from one defended run: authoritative file bytes,
/// makespan and per-rank clocks as raw bits, and the defense counters.
type DefendedRun = (Vec<u8>, u64, Vec<u64>, pfs::HealthSnapshot);

/// Run the plan's writes, then read every block back through the full
/// defense stack — health tracking, circuit breakers, degraded-mode
/// relocation, hedged TCIO reads, and a post-run rebuild — under a
/// seeded flaky-OST + degraded-link fault plan.
fn run_defended_gray(plan: &Plan, seed: u64) -> DefendedRun {
    fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
        mpisim::MpiError::InvalidDatatype(e.to_string())
    }
    // Both gray-failure families, windows closed well before the rebuild.
    let horizon = 0.05;
    let fplan = chaos::FaultPlan::new(seed)
        .with(chaos::Fault::FlakyOst {
            ost: (seed % 4) as usize,
            factor: 16.0,
            period: 1e-3,
            duty: 0.7,
            from: 0.0,
            until: horizon,
        })
        .with(chaos::Fault::LinkDegrade {
            src: (seed as usize + 1) % plan.nprocs,
            dst: seed as usize % plan.nprocs,
            factor: 3.0,
            from: 0.0,
            until: horizon / 2.0,
        });
    let engine = fplan.build().unwrap();
    // Tiny stripes so even a ~1 KiB plan file spreads across all OSTs and
    // the flaky one sees enough traffic to trip its breaker.
    let pcfg = pfs::PfsConfig {
        stripe_size: 64,
        stripe_count: 4,
        num_osts: 4,
        ..Default::default()
    };
    let fs = pfs::Pfs::new(plan.nprocs, pcfg).unwrap();
    fs.attach_chaos(Arc::clone(&engine)).unwrap();
    fs.enable_health(pfs::HealthConfig {
        min_samples: 2,
        hedge_min_samples: 8,
        open_secs: 2e-3,
        ..Default::default()
    })
    .unwrap();
    let sim = mpisim::SimConfig {
        chaos: Some(engine),
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let plan2 = plan.clone();
    let model = model_file(plan);
    let model2 = model.clone();
    let rep = mpisim::run(plan.nprocs, sim, move |rk| {
        let mut cfg = TcioConfig::for_file_size_with_segment(
            model2.len().max(1) as u64,
            rk.nprocs(),
            plan2.segment,
        );
        cfg.hedged_reads = true;
        {
            let mut f =
                TcioFile::open(rk, &fs2, "/gray", TcioMode::Write, cfg.clone()).map_err(to_mpi)?;
            for &(rank, off, len, fill) in &plan2.blocks {
                if rank == rk.rank() {
                    f.write_at(rk, off, &block_data(len, fill))
                        .map_err(to_mpi)?;
                }
            }
            f.close(rk).map_err(to_mpi)?;
        }
        // Read every block back hedged and verify against the model: the
        // defenses may reroute cost-plane traffic but never the bytes.
        let mut f = TcioFile::open(rk, &fs2, "/gray", TcioMode::Read, cfg).map_err(to_mpi)?;
        let mut bufs: Vec<(u64, Vec<u8>)> = plan2
            .blocks
            .iter()
            .filter(|&&(r, _, _, _)| r == rk.rank())
            .map(|&(_, off, len, _)| (off, vec![0u8; len]))
            .collect();
        for (off, buf) in bufs.iter_mut() {
            f.read_at(rk, *off, buf).map_err(to_mpi)?;
        }
        f.fetch(rk).map_err(to_mpi)?;
        f.close(rk).map_err(to_mpi)?;
        for (off, buf) in &bufs {
            let want = &model2[*off as usize..*off as usize + buf.len()];
            if buf.as_slice() != want {
                return Err(to_mpi(format!("hedged read mismatch at offset {off}")));
            }
        }
        Ok(())
    })
    .unwrap();
    // Post-run rebuild after the fault horizon: drain the relocation map.
    let mut now = rep.makespan.max(horizon);
    for _ in 0..8 {
        if fs.health_report().is_none_or(|s| s.relocated_live == 0) {
            break;
        }
        let r = fs.rebuild(now).unwrap();
        now = r.completed_at.max(now) + 2e-3;
        if r.remaining == 0 {
            break;
        }
    }
    let fid = fs.open("/gray").unwrap();
    let bytes = fs.snapshot_file(fid).unwrap();
    assert_eq!(
        bytes, model,
        "seed {seed}: defended bytes diverge from model"
    );
    (
        bytes,
        rep.makespan.to_bits(),
        rep.clocks.iter().map(|c| c.to_bits()).collect(),
        fs.health_report().unwrap(),
    )
}

#[test]
fn defended_gray_failure_runs_are_deterministic_across_50_seeds() {
    // Run-twice determinism with the whole defense stack live: same seed
    // ⇒ bit-identical makespan, clocks, bytes, and defense counters,
    // while the read-back inside each run stays byte-exact despite
    // breakers, relocation, hedging, and rebuild all firing across the
    // seed population.
    let mut opens = 0u64;
    let mut hedges = 0u64;
    let mut relocs = 0u64;
    for seed in 600..650u64 {
        let plan = random_plan(seed);
        if plan.blocks.is_empty() {
            continue;
        }
        let a = run_defended_gray(&plan, seed);
        let b = run_defended_gray(&plan, seed);
        assert_eq!(a.1, b.1, "seed {seed}: makespan diverged across runs");
        assert_eq!(a.2, b.2, "seed {seed}: clocks diverged across runs");
        assert_eq!(a.0, b.0, "seed {seed}: file bytes diverged across runs");
        assert_eq!(a.3, b.3, "seed {seed}: defense counters diverged");
        assert_eq!(
            a.3.relocated_live, 0,
            "seed {seed}: rebuild did not converge: {:?}",
            a.3
        );
        opens += a.3.breaker_opens;
        hedges += a.3.hedges_issued;
        relocs += a.3.degraded_writes;
    }
    // The property is vacuous if the plans never provoke the defenses.
    assert!(opens > 0, "no breaker ever opened across 50 seeds");
    assert!(relocs > 0, "no write was ever relocated across 50 seeds");
    let _ = hedges; // hedging is exercised separately; tiny plans may not fire it
}

#[test]
fn hedged_read_flag_without_health_layer_is_bit_identical() {
    // The zero-cost-off contract for hedged reads: with no health layer
    // attached, `hedged_reads = true` must be byte-for-byte the plain
    // read path — same makespan bits, same clocks, same file bytes.
    fn run(plan: &Plan, hedged: bool) -> (u64, Vec<u64>, Vec<u8>) {
        fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
            mpisim::MpiError::InvalidDatatype(e.to_string())
        }
        let fs = pfs::Pfs::new(plan.nprocs, pfs::PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let plan2 = plan.clone();
        let model = model_file(plan);
        let model2 = model.clone();
        let rep = mpisim::run(plan.nprocs, mpisim::SimConfig::default(), move |rk| {
            let mut cfg = TcioConfig::for_file_size_with_segment(
                model2.len().max(1) as u64,
                rk.nprocs(),
                plan2.segment,
            );
            cfg.hedged_reads = hedged;
            {
                let mut f = TcioFile::open(rk, &fs2, "/zh", TcioMode::Write, cfg.clone())
                    .map_err(to_mpi)?;
                for &(rank, off, len, fill) in &plan2.blocks {
                    if rank == rk.rank() {
                        f.write_at(rk, off, &block_data(len, fill))
                            .map_err(to_mpi)?;
                    }
                }
                f.close(rk).map_err(to_mpi)?;
            }
            let mut f = TcioFile::open(rk, &fs2, "/zh", TcioMode::Read, cfg).map_err(to_mpi)?;
            let mut bufs: Vec<(u64, Vec<u8>)> = plan2
                .blocks
                .iter()
                .filter(|&&(r, _, _, _)| r == rk.rank())
                .map(|&(_, off, len, _)| (off, vec![0u8; len]))
                .collect();
            for (off, buf) in bufs.iter_mut() {
                f.read_at(rk, *off, buf).map_err(to_mpi)?;
            }
            f.fetch(rk).map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/zh").unwrap();
        (
            rep.makespan.to_bits(),
            rep.clocks.iter().map(|c| c.to_bits()).collect(),
            fs.snapshot_file(fid).unwrap(),
        )
    }
    for seed in 650..662u64 {
        let plan = random_plan(seed);
        if plan.blocks.is_empty() {
            continue;
        }
        let off = run(&plan, false);
        let on = run(&plan, true);
        assert_eq!(off.0, on.0, "seed {seed}: makespan changed with the flag");
        assert_eq!(off.1, on.1, "seed {seed}: clocks changed with the flag");
        assert_eq!(off.2, on.2, "seed {seed}: bytes changed with the flag");
    }
}
