//! Verification-first tests for the tracing/metrics layer: conservation of
//! virtual time and bytes, well-formed span structure, and a golden-file
//! check of the Chrome trace exporter.
//!
//! The contract under test: every advance of a rank's virtual clock is
//! attributed to exactly one phase (compute/exchange/io/sync), so the
//! per-phase totals partition the elapsed time; and every byte a write
//! span claims is a byte that landed in the simulated PFS.

use std::sync::Arc;
use workloads::synthetic::{self, Method, SynthParams};
use workloads::WlError;

/// Span names that account for bytes written to the PFS (one per write
/// path: collective aggregator, independent, data-sieving RMW, TCIO drain).
const WRITE_SITES: [&str; 4] = ["ocio_io", "indep_write", "sieve_rmw", "tcio_drain"];

fn traced_write(
    method: Method,
    nprocs: usize,
    p: &SynthParams,
) -> (mpisim::SimReport<()>, Arc<pfs::Pfs>) {
    traced_write_topo(method, nprocs, p, None)
}

fn traced_write_topo(
    method: Method,
    nprocs: usize,
    p: &SynthParams,
    topology: Option<mpisim::Topology>,
) -> (mpisim::SimReport<()>, Arc<pfs::Pfs>) {
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    let sim = mpisim::SimConfig {
        trace: true,
        topology,
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let rep = mpisim::run(nprocs, sim, move |rk| {
        synthetic::write_with(method, rk, &fs2, &p2, "/obs").map_err(WlError::into_mpi)?;
        Ok(())
    })
    .unwrap();
    (rep, fs)
}

#[test]
fn phase_durations_sum_to_elapsed_virtual_time() {
    // The acceptance criterion: per rank, compute + exchange + io + sync
    // must equal the final clock to within 1e-9 virtual seconds, for every
    // I/O method on the interleaved-arrays workload.
    let p = SynthParams::with_types("i,d", 256, 2).unwrap();
    for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
        let (rep, _) = traced_write(method, 4, &p);
        for (r, tr) in rep.traces.iter().enumerate() {
            let residual = (tr.totals.total() - rep.clocks[r]).abs();
            assert!(
                residual <= 1e-9,
                "{method:?} rank {r}: phase sum {} vs clock {} (residual {residual:e})",
                tr.totals.total(),
                rep.clocks[r]
            );
        }
        // The same invariant must hold with recording off (phase totals are
        // always-on; spans are the optional part).
        let fs = pfs::Pfs::new(4, pfs::PfsConfig::default()).unwrap();
        let p2 = p.clone();
        let rep_off = mpisim::run(4, mpisim::SimConfig::default(), move |rk| {
            synthetic::write_with(method, rk, &fs, &p2, "/obs").map_err(WlError::into_mpi)?;
            Ok(())
        })
        .unwrap();
        for (r, tr) in rep_off.traces.iter().enumerate() {
            assert!((tr.totals.total() - rep_off.clocks[r]).abs() <= 1e-9);
            assert!(tr.spans.is_empty(), "spans must not be recorded when off");
        }
    }
}

#[test]
fn traced_write_bytes_equal_pfs_bytes_landed() {
    // Bytes conservation: the sum of bytes claimed by write-site spans
    // equals the bytes the simulated PFS actually accepted.
    let p = SynthParams::with_types("i,d", 384, 4).unwrap();
    for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
        let (rep, fs) = traced_write(method, 4, &p);
        let claimed: u64 = rep
            .traces
            .iter()
            .flat_map(|t| &t.spans)
            .filter(|s| WRITE_SITES.contains(&s.name))
            .map(|s| s.bytes)
            .sum();
        let landed = fs.stats.snapshot().bytes_written;
        assert_eq!(
            claimed, landed,
            "{method:?}: spans claim {claimed} B written, PFS landed {landed} B"
        );
        assert!(claimed > 0, "{method:?} must have written something");
    }
}

#[test]
fn spans_are_well_formed_and_dependencies_resolve() {
    let p = SynthParams::with_types("i,d", 128, 2).unwrap();
    let (rep, _) = traced_write(Method::Tcio, 4, &p);
    let mut all_ids = std::collections::HashSet::new();
    for tr in &rep.traces {
        assert!(!tr.spans.is_empty());
        for s in &tr.spans {
            assert!(s.end >= s.start, "span {} runs backwards", s.name);
            assert!(s.start >= 0.0 && s.end <= rep.clocks[s.rank] + 1e-12);
            assert!(all_ids.insert(s.id), "duplicate span id {}", s.id);
            assert_eq!((s.id >> 32) as usize, s.rank, "id must embed the rank");
        }
    }
    // Every dependency edge must point at a recorded span on some rank,
    // and a receive cannot complete before its matching send completed.
    // The TCIO exchange is one-sided, so matched edges come from a ring of
    // explicit sends layered on top of the workload.
    let nprocs = 4;
    let sim = mpisim::SimConfig {
        trace: true,
        ..Default::default()
    };
    let rep = mpisim::run(nprocs, sim, |rk| {
        let n = rk.nprocs();
        let me = rk.rank();
        rk.send((me + 1) % n, 7, &[me as u8; 1024])?;
        rk.recv(Some((me + n - 1) % n), Some(7))?;
        rk.barrier()?;
        Ok(())
    })
    .unwrap();
    let by_id: std::collections::HashMap<u64, &mpisim::Span> = rep
        .traces
        .iter()
        .flat_map(|t| &t.spans)
        .map(|s| (s.id, s))
        .collect();
    let mut edges = 0usize;
    for s in rep.traces.iter().flat_map(|t| &t.spans) {
        if let Some(dep) = s.dep {
            let src = by_id.get(&dep).expect("dangling dependency edge");
            assert!(src.end <= s.end + 1e-12, "effect precedes cause");
            assert_ne!(src.rank, s.rank, "ring edges must cross ranks");
            edges += 1;
        }
    }
    assert_eq!(edges, nprocs, "one recv edge per rank in the ring");
}

/// Owner-local, OST-disjoint dump on 4 ranks: rank `r` writes exactly
/// stripe `r`, so no shared timeline (NIC port, rx port, OST) ever sees
/// two racing reservations and every virtual clock is
/// scheduler-independent — the precondition for comparing clocks across
/// two separate runs bit-for-bit.
fn disjoint_write_run(
    method: Method,
    topology: Option<mpisim::Topology>,
) -> (Vec<f64>, mpisim::FabricStatsSnapshot, Vec<u8>) {
    let nprocs = 4;
    let seg: u64 = 1 << 12;
    let pcfg = pfs::PfsConfig {
        stripe_size: seg,
        stripe_count: 4,
        num_osts: 4,
        ..Default::default()
    };
    let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
    let sim = mpisim::SimConfig {
        topology,
        ..Default::default()
    };
    fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
        mpisim::MpiError::InvalidDatatype(e.to_string())
    }
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let off = rk.rank() as u64 * seg;
        let data = vec![rk.rank() as u8 + 1; seg as usize];
        match method {
            Method::Tcio => {
                let cfg = tcio::TcioConfig {
                    segment_size: seg,
                    num_segments: 1,
                    ..Default::default()
                };
                let mut f = tcio::TcioFile::open(rk, &fs2, "/zco", tcio::TcioMode::Write, cfg)
                    .map_err(to_mpi)?;
                f.write_at(rk, off, &data).map_err(to_mpi)?;
                f.close(rk).map_err(to_mpi)?;
            }
            Method::Ocio => {
                let mut f =
                    mpiio::File::open(rk, &fs2, "/zco", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
                mpiio::write_all_at(rk, &mut f, off, &data, &mpiio::CollectiveConfig::default())
                    .map_err(to_mpi)?;
                f.close(rk).map_err(to_mpi)?;
            }
            _ => {
                let mut f =
                    mpiio::File::open(rk, &fs2, "/zco", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
                f.write_at(rk, off, &data).map_err(to_mpi)?;
                f.close(rk).map_err(to_mpi)?;
            }
        }
        Ok(())
    })
    .unwrap();
    let fid = fs.open("/zco").unwrap();
    (rep.clocks, rep.fabric, fs.snapshot_file(fid).unwrap())
}

#[test]
fn trivial_topology_is_bit_identical_to_no_topology() {
    // Zero-cost-off: placing every rank on its own node (`ppn = 1`) must
    // leave the simulation indistinguishable from one with no topology at
    // all — same file bytes, same fabric counters, and the same virtual
    // clock on every rank, to the bit, for all three write stacks.
    for method in [Method::Tcio, Method::Ocio, Method::Vanilla] {
        let (c0, f0, b0) = disjoint_write_run(method, None);
        let (c1, f1, b1) = disjoint_write_run(method, Some(mpisim::Topology::blocked(4, 1)));
        assert_eq!(b0, b1, "{method:?}: ppn=1 topology changed file bytes");
        assert_eq!(c0, c1, "{method:?}: ppn=1 topology changed rank clocks");
        assert_eq!(f0, f1, "{method:?}: ppn=1 topology changed fabric stats");
        assert_eq!(
            f1.intra_bytes + f1.inter_bytes,
            f1.bytes,
            "{method:?}: byte-level split must partition total fabric bytes"
        );
    }
}

#[test]
fn fabric_level_split_partitions_messages_and_bytes() {
    // Conservation of the new per-level counters: every transfer is
    // classified intra xor inter, so the splits must sum to the fabric
    // totals exactly — with co-located ranks and without.
    let p = SynthParams::with_types("i,d", 384, 4).unwrap();
    for topology in [None, Some(mpisim::Topology::blocked(4, 2))] {
        for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
            let (rep, fs) = traced_write_topo(method, 4, &p, topology.clone());
            let f = rep.fabric;
            assert_eq!(
                f.intra_messages + f.inter_messages,
                f.messages,
                "{method:?} topo={:?}: message split leaks",
                topology.is_some()
            );
            assert_eq!(
                f.intra_bytes + f.inter_bytes,
                f.bytes,
                "{method:?} topo={:?}: byte split leaks",
                topology.is_some()
            );
            // The bytes-landed conservation of the seed suite must keep
            // holding when a topology reroutes transfers through node NICs.
            let claimed: u64 = rep
                .traces
                .iter()
                .flat_map(|t| &t.spans)
                .filter(|s| WRITE_SITES.contains(&s.name))
                .map(|s| s.bytes)
                .sum();
            assert_eq!(claimed, fs.stats.snapshot().bytes_written);
        }
    }
    // With co-located ranks the two-level exchange must actually shift
    // traffic onto the intra-node links.
    let fs = pfs::Pfs::new(4, pfs::PfsConfig::default()).unwrap();
    let sim = mpisim::SimConfig {
        topology: Some(mpisim::Topology::blocked(4, 2)),
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let rep = mpisim::run(4, sim, move |rk| {
        let ccfg = mpiio::CollectiveConfig {
            intra_agg: true,
            ..Default::default()
        };
        synthetic::write_ocio(rk, &fs2, &p2, "/obs", &ccfg).map_err(WlError::into_mpi)?;
        Ok(())
    })
    .unwrap();
    assert!(
        rep.fabric.intra_bytes > 0,
        "two-level exchange on a 2-rank node must move intra-node bytes"
    );
    assert_eq!(
        rep.fabric.intra_bytes + rep.fabric.inter_bytes,
        rep.fabric.bytes
    );
}

#[test]
fn chrome_trace_matches_golden_file() {
    // One rank, fixed workload: the trace is exactly deterministic, so the
    // exported JSON must be byte-identical to the committed golden file.
    // Regenerate with: BLESS=1 cargo test --test observability
    let p = SynthParams::with_types("i,d", 16, 2).unwrap();
    let (rep, _) = traced_write(Method::Tcio, 1, &p);
    let json = mpisim::chrome_trace_json(&rep.traces);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let expected = std::fs::read_to_string(path).expect("golden file missing; run with BLESS=1");
    assert_eq!(
        json, expected,
        "exporter output drifted from the golden file"
    );
    // Sanity-check the envelope without relying on a JSON parser.
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    assert!(json.contains("\"ph\":\"X\""));
}
