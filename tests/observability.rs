//! Verification-first tests for the tracing/metrics layer: conservation of
//! virtual time and bytes, well-formed span structure, and a golden-file
//! check of the Chrome trace exporter.
//!
//! The contract under test: every advance of a rank's virtual clock is
//! attributed to exactly one phase (compute/exchange/io/sync), so the
//! per-phase totals partition the elapsed time; and every byte a write
//! span claims is a byte that landed in the simulated PFS.

use std::sync::Arc;
use workloads::synthetic::{self, Method, SynthParams};
use workloads::WlError;

/// Span names that account for bytes written to the PFS (one per write
/// path: collective aggregator, independent, data-sieving RMW, TCIO
/// drain — plus the pipelined twins each path records when its deferred
/// round/segment handles are in play).
const WRITE_SITES: [&str; 8] = [
    "ocio_io",
    "indep_write",
    "sieve_rmw",
    "tcio_drain",
    "ocio_io_pipe",
    "vb_io_pipe",
    "par_io_pipe",
    "tcio_drain_pipe",
];

fn traced_write(
    method: Method,
    nprocs: usize,
    p: &SynthParams,
) -> (mpisim::SimReport<()>, Arc<pfs::Pfs>) {
    traced_write_topo(method, nprocs, p, None)
}

fn traced_write_topo(
    method: Method,
    nprocs: usize,
    p: &SynthParams,
    topology: Option<mpisim::Topology>,
) -> (mpisim::SimReport<()>, Arc<pfs::Pfs>) {
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    let sim = mpisim::SimConfig {
        trace: true,
        topology,
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let rep = mpisim::run(nprocs, sim, move |rk| {
        synthetic::write_with(method, rk, &fs2, &p2, "/obs").map_err(WlError::into_mpi)?;
        Ok(())
    })
    .unwrap();
    (rep, fs)
}

#[test]
fn phase_durations_sum_to_elapsed_virtual_time() {
    // The acceptance criterion: per rank, compute + exchange + io + sync
    // must equal the final clock to within 1e-9 virtual seconds, for every
    // I/O method on the interleaved-arrays workload.
    let p = SynthParams::with_types("i,d", 256, 2).unwrap();
    for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
        let (rep, _) = traced_write(method, 4, &p);
        for (r, tr) in rep.traces.iter().enumerate() {
            let residual = (tr.totals.total() - rep.clocks[r]).abs();
            assert!(
                residual <= 1e-9,
                "{method:?} rank {r}: phase sum {} vs clock {} (residual {residual:e})",
                tr.totals.total(),
                rep.clocks[r]
            );
        }
        // The same invariant must hold with recording off (phase totals are
        // always-on; spans are the optional part).
        let fs = pfs::Pfs::new(4, pfs::PfsConfig::default()).unwrap();
        let p2 = p.clone();
        let rep_off = mpisim::run(4, mpisim::SimConfig::default(), move |rk| {
            synthetic::write_with(method, rk, &fs, &p2, "/obs").map_err(WlError::into_mpi)?;
            Ok(())
        })
        .unwrap();
        for (r, tr) in rep_off.traces.iter().enumerate() {
            assert!((tr.totals.total() - rep_off.clocks[r]).abs() <= 1e-9);
            assert!(tr.spans.is_empty(), "spans must not be recorded when off");
        }
    }
}

#[test]
fn traced_write_bytes_equal_pfs_bytes_landed() {
    // Bytes conservation: the sum of bytes claimed by write-site spans
    // equals the bytes the simulated PFS actually accepted.
    let p = SynthParams::with_types("i,d", 384, 4).unwrap();
    for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
        let (rep, fs) = traced_write(method, 4, &p);
        let claimed: u64 = rep
            .traces
            .iter()
            .flat_map(|t| &t.spans)
            .filter(|s| WRITE_SITES.contains(&s.name))
            .map(|s| s.bytes)
            .sum();
        let landed = fs.stats.snapshot().bytes_written;
        assert_eq!(
            claimed, landed,
            "{method:?}: spans claim {claimed} B written, PFS landed {landed} B"
        );
        assert!(claimed > 0, "{method:?} must have written something");
    }
}

#[test]
fn spans_are_well_formed_and_dependencies_resolve() {
    let p = SynthParams::with_types("i,d", 128, 2).unwrap();
    let (rep, _) = traced_write(Method::Tcio, 4, &p);
    let mut all_ids = std::collections::HashSet::new();
    for tr in &rep.traces {
        assert!(!tr.spans.is_empty());
        for s in &tr.spans {
            assert!(s.end >= s.start, "span {} runs backwards", s.name);
            assert!(s.start >= 0.0 && s.end <= rep.clocks[s.rank] + 1e-12);
            assert!(all_ids.insert(s.id), "duplicate span id {}", s.id);
            assert_eq!((s.id >> 32) as usize, s.rank, "id must embed the rank");
        }
    }
    // Every dependency edge must point at a recorded span on some rank,
    // and a receive cannot complete before its matching send completed.
    // The TCIO exchange is one-sided, so matched edges come from a ring of
    // explicit sends layered on top of the workload.
    let nprocs = 4;
    let sim = mpisim::SimConfig {
        trace: true,
        ..Default::default()
    };
    let rep = mpisim::run(nprocs, sim, |rk| {
        let n = rk.nprocs();
        let me = rk.rank();
        rk.send((me + 1) % n, 7, &[me as u8; 1024])?;
        rk.recv(Some((me + n - 1) % n), Some(7))?;
        rk.barrier()?;
        Ok(())
    })
    .unwrap();
    let by_id: std::collections::HashMap<u64, &mpisim::Span> = rep
        .traces
        .iter()
        .flat_map(|t| &t.spans)
        .map(|s| (s.id, s))
        .collect();
    let mut edges = 0usize;
    for s in rep.traces.iter().flat_map(|t| &t.spans) {
        if let Some(dep) = s.dep {
            let src = by_id.get(&dep).expect("dangling dependency edge");
            assert!(src.end <= s.end + 1e-12, "effect precedes cause");
            assert_ne!(src.rank, s.rank, "ring edges must cross ranks");
            edges += 1;
        }
    }
    assert_eq!(edges, nprocs, "one recv edge per rank in the ring");
}

/// Owner-local, OST-disjoint dump on 4 ranks: rank `r` writes exactly
/// stripe `r`, so no shared timeline (NIC port, rx port, OST) ever sees
/// two racing reservations and every virtual clock is
/// scheduler-independent — the precondition for comparing clocks across
/// two separate runs bit-for-bit.
fn disjoint_write_run(
    method: Method,
    topology: Option<mpisim::Topology>,
) -> (Vec<f64>, mpisim::FabricStatsSnapshot, Vec<u8>) {
    let nprocs = 4;
    let seg: u64 = 1 << 12;
    let pcfg = pfs::PfsConfig {
        stripe_size: seg,
        stripe_count: 4,
        num_osts: 4,
        ..Default::default()
    };
    let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
    let sim = mpisim::SimConfig {
        topology,
        ..Default::default()
    };
    fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
        mpisim::MpiError::InvalidDatatype(e.to_string())
    }
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let off = rk.rank() as u64 * seg;
        let data = vec![rk.rank() as u8 + 1; seg as usize];
        match method {
            Method::Tcio => {
                let cfg = tcio::TcioConfig {
                    segment_size: seg,
                    num_segments: 1,
                    ..Default::default()
                };
                let mut f = tcio::TcioFile::open(rk, &fs2, "/zco", tcio::TcioMode::Write, cfg)
                    .map_err(to_mpi)?;
                f.write_at(rk, off, &data).map_err(to_mpi)?;
                f.close(rk).map_err(to_mpi)?;
            }
            Method::Ocio => {
                let mut f =
                    mpiio::File::open(rk, &fs2, "/zco", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
                mpiio::write_all_at(rk, &mut f, off, &data, &mpiio::CollectiveConfig::default())
                    .map_err(to_mpi)?;
                f.close(rk).map_err(to_mpi)?;
            }
            _ => {
                let mut f =
                    mpiio::File::open(rk, &fs2, "/zco", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
                f.write_at(rk, off, &data).map_err(to_mpi)?;
                f.close(rk).map_err(to_mpi)?;
            }
        }
        Ok(())
    })
    .unwrap();
    let fid = fs.open("/zco").unwrap();
    (rep.clocks, rep.fabric, fs.snapshot_file(fid).unwrap())
}

#[test]
fn trivial_topology_is_bit_identical_to_no_topology() {
    // Zero-cost-off: placing every rank on its own node (`ppn = 1`) must
    // leave the simulation indistinguishable from one with no topology at
    // all — same file bytes, same fabric counters, and the same virtual
    // clock on every rank, to the bit, for all three write stacks.
    for method in [Method::Tcio, Method::Ocio, Method::Vanilla] {
        let (c0, f0, b0) = disjoint_write_run(method, None);
        let (c1, f1, b1) = disjoint_write_run(method, Some(mpisim::Topology::blocked(4, 1)));
        assert_eq!(b0, b1, "{method:?}: ppn=1 topology changed file bytes");
        assert_eq!(c0, c1, "{method:?}: ppn=1 topology changed rank clocks");
        assert_eq!(f0, f1, "{method:?}: ppn=1 topology changed fabric stats");
        assert_eq!(
            f1.intra_bytes + f1.inter_bytes,
            f1.bytes,
            "{method:?}: byte-level split must partition total fabric bytes"
        );
    }
}

#[test]
fn fabric_level_split_partitions_messages_and_bytes() {
    // Conservation of the new per-level counters: every transfer is
    // classified intra xor inter, so the splits must sum to the fabric
    // totals exactly — with co-located ranks and without.
    let p = SynthParams::with_types("i,d", 384, 4).unwrap();
    for topology in [None, Some(mpisim::Topology::blocked(4, 2))] {
        for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
            let (rep, fs) = traced_write_topo(method, 4, &p, topology.clone());
            let f = rep.fabric;
            assert_eq!(
                f.intra_messages + f.inter_messages,
                f.messages,
                "{method:?} topo={:?}: message split leaks",
                topology.is_some()
            );
            assert_eq!(
                f.intra_bytes + f.inter_bytes,
                f.bytes,
                "{method:?} topo={:?}: byte split leaks",
                topology.is_some()
            );
            // The bytes-landed conservation of the seed suite must keep
            // holding when a topology reroutes transfers through node NICs.
            let claimed: u64 = rep
                .traces
                .iter()
                .flat_map(|t| &t.spans)
                .filter(|s| WRITE_SITES.contains(&s.name))
                .map(|s| s.bytes)
                .sum();
            assert_eq!(claimed, fs.stats.snapshot().bytes_written);
        }
    }
    // With co-located ranks the two-level exchange must actually shift
    // traffic onto the intra-node links.
    let fs = pfs::Pfs::new(4, pfs::PfsConfig::default()).unwrap();
    let sim = mpisim::SimConfig {
        topology: Some(mpisim::Topology::blocked(4, 2)),
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let rep = mpisim::run(4, sim, move |rk| {
        let ccfg = mpiio::CollectiveConfig {
            intra_agg: true,
            ..Default::default()
        };
        synthetic::write_ocio(rk, &fs2, &p2, "/obs", &ccfg).map_err(WlError::into_mpi)?;
        Ok(())
    })
    .unwrap();
    assert!(
        rep.fabric.intra_bytes > 0,
        "two-level exchange on a 2-rank node must move intra-node bytes"
    );
    assert_eq!(
        rep.fabric.intra_bytes + rep.fabric.inter_bytes,
        rep.fabric.bytes
    );
}

#[test]
fn chrome_trace_matches_golden_file() {
    // One rank, fixed workload: the trace is exactly deterministic, so the
    // exported JSON must be byte-identical to the committed golden file.
    // Regenerate with: BLESS=1 cargo test --test observability
    let p = SynthParams::with_types("i,d", 16, 2).unwrap();
    let (rep, _) = traced_write(Method::Tcio, 1, &p);
    let json = mpisim::chrome_trace_json(&rep.traces);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let expected = std::fs::read_to_string(path).expect("golden file missing; run with BLESS=1");
    assert_eq!(
        json, expected,
        "exporter output drifted from the golden file"
    );
    // Sanity-check the envelope without relying on a JSON parser.
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    assert!(json.contains("\"ph\":\"X\""));
}

#[test]
fn chrome_trace_stays_well_formed_across_a_rank_crash() {
    // The committed crash plan: rank 0 fails permanently at t = 3 ms,
    // mid write phase. The exported Chrome trace must remain parseable,
    // every event well-formed, and — the attribution contract — no span
    // may be charged to the crashed rank after its crash instant.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/plans/rank_crash.toml"
    ))
    .unwrap();
    let engine = chaos::FaultPlan::parse(&text).unwrap().build().unwrap();

    let nprocs = 4;
    let block = 16usize;
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    fs.attach_chaos(Arc::clone(&engine)).unwrap();
    let sim = mpisim::SimConfig {
        trace: true,
        chaos: Some(Arc::clone(&engine)),
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
            mpisim::MpiError::InvalidDatatype(e.to_string())
        }
        let cfg = tcio::TcioConfig {
            segment_size: 64,
            num_segments: 4,
            ..Default::default()
        };
        let me = rk.rank();
        let mut f = tcio::TcioFile::open(rk, &fs2, "/crash_trace", tcio::TcioMode::Write, cfg)
            .map_err(to_mpi)?;
        let data = vec![me as u8 + 1; block];
        for i in 0..6 {
            let off = ((i * rk.nprocs() + me) * block) as u64;
            f.write_at(rk, off, &data).map_err(to_mpi)?;
        }
        f.flush(rk).map_err(to_mpi)?;
        // Move past the crash instant so the failure fires inside close.
        rk.advance(1.0);
        match f.close(rk) {
            Ok(_) => Ok(()),
            Err(tcio::TcioError::Mpi(mpisim::MpiError::RankCrashed { rank })) if rank == me => {
                Ok(())
            }
            Err(e) => Err(to_mpi(e)),
        }
    })
    .unwrap();
    assert_eq!(rep.stats[0].rank_crashes, 1, "the plan must fire on rank 0");

    // The crash instant, as recorded: the (zero-width) rank_crash span.
    let crash_span = rep.traces[0]
        .spans
        .iter()
        .find(|s| s.name == "rank_crash")
        .expect("crashed rank must carry a rank_crash span");
    let t_crash = crash_span.end;

    // No span may be attributed to the dead rank after the crash: spans
    // are recorded at completion, and a crashed rank completes nothing.
    for s in &rep.traces[0].spans {
        assert!(
            s.start <= t_crash + 1e-12,
            "span {:?} starts at {} on rank 0, after the crash at {t_crash}",
            s.name,
            s.start
        );
    }
    // Its clock froze at the crash; survivors ran on past it.
    assert!(rep.clocks[0] <= t_crash + 1e-9);
    assert!(rep.clocks.iter().skip(1).all(|&c| c > t_crash));

    // The exported trace parses as JSON and every event is well-formed.
    let trace = mpisim::chrome_trace_json(&rep.traces);
    let doc = bench::Json::parse(&trace).expect("chrome trace must be valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|j| j.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|j| j.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut prev_ts = f64::MIN;
    let mut ids = std::collections::BTreeSet::new();
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|j| j.as_str()), Some("X"));
        assert!(ev.get("name").and_then(|j| j.as_str()).is_some());
        let ts = ev.get("ts").and_then(|j| j.as_f64()).expect("numeric ts");
        let dur = ev.get("dur").and_then(|j| j.as_f64()).expect("numeric dur");
        let tid = ev.get("tid").and_then(|j| j.as_f64()).expect("numeric tid");
        assert!(ts.is_finite() && dur.is_finite() && dur >= 0.0);
        assert!((tid as usize) < nprocs, "tid {tid} out of range");
        assert!(ts >= prev_ts, "events must be sorted by start time");
        prev_ts = ts;
        let id = ev
            .get("args")
            .and_then(|a| a.get("id"))
            .and_then(|j| j.as_f64())
            .expect("span id") as u64;
        assert!(ids.insert(id), "span id {id} duplicated");
        if tid as usize == 0 {
            assert!(
                ts <= t_crash * 1e6 + 1e-3,
                "event at {ts}us charged to crashed rank 0 after crash at {}us",
                t_crash * 1e6
            );
        }
    }
}

/// Chunked collective write (several rounds per aggregator), flat or
/// pipelined, with request aggregation on a 2-ranks-per-node topology.
fn pipelined_conservation_run(pipeline: bool) -> (mpisim::SimReport<()>, Arc<pfs::Pfs>) {
    let nprocs = 4;
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    let sim = mpisim::SimConfig {
        trace: true,
        topology: Some(mpisim::Topology::blocked(nprocs, 2)),
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let ccfg = mpiio::CollectiveConfig {
            cb_buffer: Some(256),
            req_agg: true,
            pipeline,
            ..Default::default()
        };
        let p = SynthParams::with_types("i,d", 256, 2).unwrap();
        synthetic::write_ocio(rk, &fs2, &p, "/pipe_obs", &ccfg).map_err(WlError::into_mpi)?;
        Ok(())
    })
    .unwrap();
    (rep, fs)
}

#[test]
fn pipelined_rounds_conserve_time_bytes_and_report_overlap() {
    // The overlap-conservation contract for the round pipeline: deferring
    // I/O completions must not lose or double-count virtual time (the
    // critical path still tiles [0, makespan] with zero residual), must
    // not leak bytes (write-site spans still equal PFS bytes landed), and
    // must show up in the insight overlap report — a strictly positive
    // exchange/service overlap fraction, where the flat run reports
    // exactly zero.
    let (flat, flat_fs) = pipelined_conservation_run(false);
    let (piped, piped_fs) = pipelined_conservation_run(true);

    for (rep, fs, label) in [(&flat, &flat_fs, "flat"), (&piped, &piped_fs, "pipelined")] {
        // Per-rank phase totals still partition the clock.
        for (r, tr) in rep.traces.iter().enumerate() {
            assert!(
                (tr.totals.total() - rep.clocks[r]).abs() <= 1e-9,
                "{label} rank {r}: phase sum {} vs clock {}",
                tr.totals.total(),
                rep.clocks[r]
            );
        }
        // Critical path tiles the makespan with zero residual.
        let cp = insight::Analyzer::new(&rep.traces).critical_path();
        assert!(!cp.truncated, "{label}: path walker truncated");
        assert!(
            cp.residual().abs() <= 1e-9 * rep.makespan.max(1.0),
            "{label}: path breakdown loses {}s of the makespan",
            cp.residual()
        );
        // Bytes conservation through the (possibly pipelined) write sites.
        let claimed: u64 = rep
            .traces
            .iter()
            .flat_map(|t| &t.spans)
            .filter(|s| WRITE_SITES.contains(&s.name))
            .map(|s| s.bytes)
            .sum();
        assert_eq!(
            claimed,
            fs.stats.snapshot().bytes_written,
            "{label}: write-site spans disagree with PFS bytes landed"
        );
        assert!(claimed > 0, "{label}: nothing was written");
    }

    // Same file bytes either way — the pipeline is a pure timing feature.
    let bytes = |fs: &Arc<pfs::Pfs>| {
        let fid = fs.open("/pipe_obs").unwrap();
        fs.snapshot_file(fid).unwrap()
    };
    assert_eq!(bytes(&flat_fs), bytes(&piped_fs), "pipeline changed bytes");

    // Overlap attribution: flat is exactly zero; pipelined is positive.
    let flat_ov = insight::Analyzer::new(&flat.traces).overlap_report();
    let piped_ov = insight::Analyzer::new(&piped.traces).overlap_report();
    assert_eq!(
        flat_ov.fraction(),
        0.0,
        "flat rounds are serialized — no exchange/service overlap"
    );
    assert!(
        piped_ov.fraction() > 0.0,
        "pipelined rounds must hide OST service behind exchange \
         (io_busy {} overlapped {})",
        piped_ov.io_busy,
        piped_ov.overlapped
    );
    // And the pipelined spans really are the deferred twins.
    assert!(
        piped
            .traces
            .iter()
            .flat_map(|t| &t.spans)
            .any(|s| s.name == "ocio_io_pipe"),
        "pipelined run must record deferred-round write spans"
    );
}

#[test]
fn metrics_off_is_bit_identical_and_collects_nothing() {
    // Zero-cost-off for the metrics registry, guarded like the chaos
    // checks: the same owner-local deterministic workload with
    // `metrics: false` vs `true` must produce bit-identical virtual
    // clocks and file bytes, and the off-run must collect no histogram
    // observations (counters still flow from the always-on stats).
    fn run(metrics: bool) -> (Vec<f64>, f64, Vec<u8>, mpisim::Registry) {
        fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
            mpisim::MpiError::InvalidDatatype(e.to_string())
        }
        let nprocs = 4;
        let seg: u64 = 1 << 12;
        let pcfg = pfs::PfsConfig {
            stripe_size: seg,
            stripe_count: 4,
            num_osts: 4,
            ..Default::default()
        };
        let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
        let sim = mpisim::SimConfig {
            metrics,
            ..Default::default()
        };
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, sim, move |rk| {
            let cfg = tcio::TcioConfig {
                segment_size: seg,
                num_segments: 1,
                ..Default::default()
            };
            let mut f = tcio::TcioFile::open(rk, &fs2, "/zc", tcio::TcioMode::Write, cfg)
                .map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; seg as usize];
            f.write_at(rk, rk.rank() as u64 * seg, &data)
                .map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            // Deterministic ring exchange: gives the message-size
            // histogram something to observe when the gate is on.
            let right = (rk.rank() + 1) % rk.nprocs();
            rk.send(right, 7, &[0u8; 1024])?;
            rk.recv(Some((rk.rank() + rk.nprocs() - 1) % rk.nprocs()), Some(7))?;
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/zc").unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        let mut reg = mpisim::Registry::new();
        reg.export_sim_report(&rep);
        (rep.clocks, rep.makespan, bytes, reg)
    }

    let (c0, m0, b0, reg_off) = run(false);
    let (c1, m1, b1, reg_on) = run(true);
    assert_eq!(c0, c1, "metrics collection perturbed virtual clocks");
    assert_eq!(m0, m1, "metrics collection perturbed the makespan");
    assert_eq!(b0, b1, "metrics collection perturbed file bytes");
    assert!(
        reg_off.hists().all(|(_, h)| h.is_empty()),
        "metrics-off run must not record histogram observations"
    );
    assert!(
        reg_on.hists().any(|(_, h)| !h.is_empty()),
        "metrics-on run must populate at least one histogram"
    );
    // The always-on stats/fabric counters are identical either way (the
    // tcio_l1/l2 hit counters live in the gated RankMetrics, so they are
    // legitimately zero when off and excluded here).
    let stats_only = |reg: &mpisim::Registry| -> Vec<(String, u64)> {
        reg.counters()
            .filter(|(k, _)| k.starts_with("mpisim_") || k.starts_with("fabric_"))
            .map(|(k, v)| (k.into(), v))
            .collect()
    };
    assert_eq!(
        stats_only(&reg_off),
        stats_only(&reg_on),
        "stats-derived counters must not depend on the metrics gate"
    );
}

#[test]
fn health_layer_attached_but_healthy_is_bit_identical_and_quiet() {
    // Zero-cost-off for the gray-failure defenses: attaching the health
    // layer (breakers + degraded routing + hedged reads) to a *healthy*
    // system must not move a single virtual timestamp — same clocks,
    // makespan, file bytes, and Chrome trace as the bare run. The only
    // permitted delta is the defense counter keys in the metrics export,
    // and every one of them must read zero.
    fn run(defended: bool) -> (Vec<f64>, f64, Vec<u8>, String, mpisim::Registry) {
        fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
            mpisim::MpiError::InvalidDatatype(e.to_string())
        }
        let nprocs = 4;
        let seg: u64 = 1 << 12;
        let pcfg = pfs::PfsConfig {
            stripe_size: seg,
            stripe_count: 4,
            num_osts: 4,
            ..Default::default()
        };
        let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
        if defended {
            fs.enable_health(pfs::HealthConfig::default()).unwrap();
        }
        let sim = mpisim::SimConfig {
            trace: true,
            ..Default::default()
        };
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, sim, move |rk| {
            let cfg = tcio::TcioConfig {
                segment_size: seg,
                num_segments: 1,
                hedged_reads: defended,
                ..Default::default()
            };
            let data = vec![rk.rank() as u8 + 1; seg as usize];
            {
                let mut f =
                    tcio::TcioFile::open(rk, &fs2, "/hz", tcio::TcioMode::Write, cfg.clone())
                        .map_err(to_mpi)?;
                f.write_at(rk, rk.rank() as u64 * seg, &data)
                    .map_err(to_mpi)?;
                f.close(rk).map_err(to_mpi)?;
            }
            let mut f =
                tcio::TcioFile::open(rk, &fs2, "/hz", tcio::TcioMode::Read, cfg).map_err(to_mpi)?;
            let mut buf = vec![0u8; seg as usize];
            f.read_at(rk, rk.rank() as u64 * seg, &mut buf)
                .map_err(to_mpi)?;
            f.fetch(rk).map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            if buf != data {
                return Err(to_mpi("read-back mismatch"));
            }
            Ok(())
        })
        .unwrap();
        let fid = fs.open("/hz").unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        let mut reg = mpisim::Registry::new();
        reg.export_sim_report(&rep);
        fs.export_metrics(&mut reg);
        (
            rep.clocks,
            rep.makespan,
            bytes,
            mpisim::chrome_trace_json(&rep.traces),
            reg,
        )
    }

    let (c0, m0, b0, t0, reg_off) = run(false);
    let (c1, m1, b1, t1, reg_on) = run(true);
    assert_eq!(c0, c1, "healthy defense layer perturbed virtual clocks");
    assert_eq!(m0, m1, "healthy defense layer perturbed the makespan");
    assert_eq!(b0, b1, "healthy defense layer perturbed file bytes");
    assert_eq!(t0, t1, "healthy defense layer perturbed the Chrome trace");
    // The defense keys exist only on the defended run, and all read zero.
    let defense_keys = [
        "pfs_hedges_issued_total",
        "pfs_hedge_wins_total",
        "pfs_hedge_waste_total",
        "pfs_breaker_opens_total",
        "pfs_breaker_probes_total",
        "pfs_degraded_writes_total",
        "pfs_degraded_bytes_total",
        "pfs_rebuilt_extents_total",
        "pfs_rebuilt_bytes_total",
        "pfs_relocated_live",
    ];
    type Counters = Vec<(String, u64)>;
    let split = |reg: &mpisim::Registry| -> (Counters, Counters) {
        reg.counters()
            .map(|(k, v)| (k.to_string(), v))
            .partition(|(k, _)| defense_keys.contains(&k.as_str()))
    };
    let (def_off, rest_off) = split(&reg_off);
    let (def_on, rest_on) = split(&reg_on);
    assert!(def_off.is_empty(), "bare run must not export defense keys");
    assert_eq!(
        def_on.len(),
        defense_keys.len(),
        "defended run exports every defense counter"
    );
    for (k, v) in &def_on {
        assert_eq!(*v, 0, "healthy run must leave {k} at zero");
    }
    assert_eq!(
        rest_off, rest_on,
        "non-defense metrics must not depend on the health layer"
    );
}
