//! Verification-first tests for the tracing/metrics layer: conservation of
//! virtual time and bytes, well-formed span structure, and a golden-file
//! check of the Chrome trace exporter.
//!
//! The contract under test: every advance of a rank's virtual clock is
//! attributed to exactly one phase (compute/exchange/io/sync), so the
//! per-phase totals partition the elapsed time; and every byte a write
//! span claims is a byte that landed in the simulated PFS.

use std::sync::Arc;
use workloads::synthetic::{self, Method, SynthParams};
use workloads::WlError;

/// Span names that account for bytes written to the PFS (one per write
/// path: collective aggregator, independent, data-sieving RMW, TCIO drain).
const WRITE_SITES: [&str; 4] = ["ocio_io", "indep_write", "sieve_rmw", "tcio_drain"];

fn traced_write(
    method: Method,
    nprocs: usize,
    p: &SynthParams,
) -> (mpisim::SimReport<()>, Arc<pfs::Pfs>) {
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    let sim = mpisim::SimConfig {
        trace: true,
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let rep = mpisim::run(nprocs, sim, move |rk| {
        synthetic::write_with(method, rk, &fs2, &p2, "/obs").map_err(WlError::into_mpi)?;
        Ok(())
    })
    .unwrap();
    (rep, fs)
}

#[test]
fn phase_durations_sum_to_elapsed_virtual_time() {
    // The acceptance criterion: per rank, compute + exchange + io + sync
    // must equal the final clock to within 1e-9 virtual seconds, for every
    // I/O method on the interleaved-arrays workload.
    let p = SynthParams::with_types("i,d", 256, 2).unwrap();
    for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
        let (rep, _) = traced_write(method, 4, &p);
        for (r, tr) in rep.traces.iter().enumerate() {
            let residual = (tr.totals.total() - rep.clocks[r]).abs();
            assert!(
                residual <= 1e-9,
                "{method:?} rank {r}: phase sum {} vs clock {} (residual {residual:e})",
                tr.totals.total(),
                rep.clocks[r]
            );
        }
        // The same invariant must hold with recording off (phase totals are
        // always-on; spans are the optional part).
        let fs = pfs::Pfs::new(4, pfs::PfsConfig::default()).unwrap();
        let p2 = p.clone();
        let rep_off = mpisim::run(4, mpisim::SimConfig::default(), move |rk| {
            synthetic::write_with(method, rk, &fs, &p2, "/obs").map_err(WlError::into_mpi)?;
            Ok(())
        })
        .unwrap();
        for (r, tr) in rep_off.traces.iter().enumerate() {
            assert!((tr.totals.total() - rep_off.clocks[r]).abs() <= 1e-9);
            assert!(tr.spans.is_empty(), "spans must not be recorded when off");
        }
    }
}

#[test]
fn traced_write_bytes_equal_pfs_bytes_landed() {
    // Bytes conservation: the sum of bytes claimed by write-site spans
    // equals the bytes the simulated PFS actually accepted.
    let p = SynthParams::with_types("i,d", 384, 4).unwrap();
    for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
        let (rep, fs) = traced_write(method, 4, &p);
        let claimed: u64 = rep
            .traces
            .iter()
            .flat_map(|t| &t.spans)
            .filter(|s| WRITE_SITES.contains(&s.name))
            .map(|s| s.bytes)
            .sum();
        let landed = fs.stats.snapshot().bytes_written;
        assert_eq!(
            claimed, landed,
            "{method:?}: spans claim {claimed} B written, PFS landed {landed} B"
        );
        assert!(claimed > 0, "{method:?} must have written something");
    }
}

#[test]
fn spans_are_well_formed_and_dependencies_resolve() {
    let p = SynthParams::with_types("i,d", 128, 2).unwrap();
    let (rep, _) = traced_write(Method::Tcio, 4, &p);
    let mut all_ids = std::collections::HashSet::new();
    for tr in &rep.traces {
        assert!(!tr.spans.is_empty());
        for s in &tr.spans {
            assert!(s.end >= s.start, "span {} runs backwards", s.name);
            assert!(s.start >= 0.0 && s.end <= rep.clocks[s.rank] + 1e-12);
            assert!(all_ids.insert(s.id), "duplicate span id {}", s.id);
            assert_eq!((s.id >> 32) as usize, s.rank, "id must embed the rank");
        }
    }
    // Every dependency edge must point at a recorded span on some rank,
    // and a receive cannot complete before its matching send completed.
    // The TCIO exchange is one-sided, so matched edges come from a ring of
    // explicit sends layered on top of the workload.
    let nprocs = 4;
    let sim = mpisim::SimConfig {
        trace: true,
        ..Default::default()
    };
    let rep = mpisim::run(nprocs, sim, |rk| {
        let n = rk.nprocs();
        let me = rk.rank();
        rk.send((me + 1) % n, 7, &[me as u8; 1024])?;
        rk.recv(Some((me + n - 1) % n), Some(7))?;
        rk.barrier()?;
        Ok(())
    })
    .unwrap();
    let by_id: std::collections::HashMap<u64, &mpisim::Span> = rep
        .traces
        .iter()
        .flat_map(|t| &t.spans)
        .map(|s| (s.id, s))
        .collect();
    let mut edges = 0usize;
    for s in rep.traces.iter().flat_map(|t| &t.spans) {
        if let Some(dep) = s.dep {
            let src = by_id.get(&dep).expect("dangling dependency edge");
            assert!(src.end <= s.end + 1e-12, "effect precedes cause");
            assert_ne!(src.rank, s.rank, "ring edges must cross ranks");
            edges += 1;
        }
    }
    assert_eq!(edges, nprocs, "one recv edge per rank in the ring");
}

#[test]
fn chrome_trace_matches_golden_file() {
    // One rank, fixed workload: the trace is exactly deterministic, so the
    // exported JSON must be byte-identical to the committed golden file.
    // Regenerate with: BLESS=1 cargo test --test observability
    let p = SynthParams::with_types("i,d", 16, 2).unwrap();
    let (rep, _) = traced_write(Method::Tcio, 1, &p);
    let json = mpisim::chrome_trace_json(&rep.traces);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let expected = std::fs::read_to_string(path).expect("golden file missing; run with BLESS=1");
    assert_eq!(
        json, expected,
        "exporter output drifted from the golden file"
    );
    // Sanity-check the envelope without relying on a JSON parser.
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    assert!(json.contains("\"ph\":\"X\""));
}
