//! End-to-end integration tests spanning all crates: the full stack
//! (mpisim → pfs → mpiio → tcio → workloads) exercised the way the paper's
//! experiments use it.

use std::sync::Arc;
use tcio::{TcioConfig, TcioFile, TcioMode};
use workloads::art::{self, ArtConfig, ArtMethod, FttConfig};
use workloads::synthetic::{self, Method, SynthParams};
use workloads::WlError;

fn small_art() -> ArtConfig {
    ArtConfig {
        num_segments: 16,
        mu: 8.0,
        sigma: 2.0,
        seed: 5,
        ftt: FttConfig {
            max_depth: 3,
            refine_prob: 0.3,
            num_vars: 2,
        },
    }
}

#[test]
fn synthetic_all_methods_all_scales_identical_files() {
    let p = SynthParams::with_types("i,d", 48, 4).unwrap();
    for nprocs in [1, 2, 3, 8] {
        let mut reference: Option<Vec<u8>> = None;
        for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
            let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
            let fs2 = Arc::clone(&fs);
            let p2 = p.clone();
            mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
                synthetic::write_with(method, rk, &fs2, &p2, "/f").map_err(WlError::into_mpi)?;
                Ok(())
            })
            .unwrap();
            let fid = fs.open("/f").unwrap();
            let bytes = fs.snapshot_file(fid).unwrap();
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(
                    r,
                    &bytes,
                    "{} differs from OCIO at P={nprocs}",
                    method.label()
                ),
            }
        }
    }
}

#[test]
fn every_reader_reads_every_writer() {
    // 3 writers × 3 readers — all nine combinations must verify.
    let p = SynthParams::with_types("i,d", 24, 2).unwrap();
    let nprocs = 4;
    for writer in [Method::Ocio, Method::Tcio, Method::Vanilla] {
        let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let p2 = p.clone();
        mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
            synthetic::write_with(writer, rk, &fs2, &p2, "/rw").map_err(WlError::into_mpi)?;
            for reader in [Method::Ocio, Method::Tcio, Method::Vanilla] {
                synthetic::read_with(reader, rk, &fs2, &p2, "/rw").map_err(WlError::into_mpi)?;
            }
            Ok(())
        })
        .unwrap();
    }
}

#[test]
fn art_snapshots_interoperate_between_methods() {
    let cfg = small_art();
    let fs = pfs::Pfs::new(4, pfs::PfsConfig::default()).unwrap();
    let fs2 = Arc::clone(&fs);
    let cfg2 = cfg.clone();
    mpisim::run(4, mpisim::SimConfig::default(), move |rk| {
        // Dump with vanilla, restart with TCIO, then the reverse.
        art::dump(rk, &fs2, &cfg2, ArtMethod::Vanilla, "/a").map_err(WlError::into_mpi)?;
        art::restart(rk, &fs2, &cfg2, ArtMethod::Tcio, "/a").map_err(WlError::into_mpi)?;
        art::dump(rk, &fs2, &cfg2, ArtMethod::Tcio, "/b").map_err(WlError::into_mpi)?;
        art::restart(rk, &fs2, &cfg2, ArtMethod::Vanilla, "/b").map_err(WlError::into_mpi)?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn art_checkpoint_byte_identical_across_methods() {
    // The ART dump is seeded, so whichever I/O path carries it — TCIO,
    // per-record independent writes, or per-tree buffered writes — the
    // bytes that land in the PFS must be identical.
    let cfg = small_art();
    for nprocs in [2, 4] {
        let mut reference: Option<Vec<u8>> = None;
        for method in [
            ArtMethod::Tcio,
            ArtMethod::Vanilla,
            ArtMethod::VanillaBuffered,
        ] {
            let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
            let fs2 = Arc::clone(&fs);
            let cfg2 = cfg.clone();
            mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
                art::dump(rk, &fs2, &cfg2, method, "/ck").map_err(WlError::into_mpi)?;
                Ok(())
            })
            .unwrap();
            let fid = fs.open("/ck").unwrap();
            let bytes = fs.snapshot_file(fid).unwrap();
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(r, &bytes, "{method:?} differs from TCIO at P={nprocs}"),
            }
        }
    }
}

#[test]
fn ocio_oom_experiment_matches_fig6() {
    // The Fig. 6 mechanism in miniature: a budget that fits TCIO's
    // footprint (arrays + level-2 share + one segment) but not OCIO's
    // (arrays + combine buffer + collective buffer).
    let nprocs = 4;
    let p = SynthParams::with_types("i,d", 4096, 1).unwrap();
    let per_rank = p.bytes_per_rank(); // 48 KiB
    let seg = 1024u64;
    let budget = per_rank * 5 / 2; // 2.5× data: TCIO fits (~2x+seg), OCIO (3x) doesn't

    let run = |method: Method| {
        let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
        let p2 = p.clone();
        let sim = mpisim::SimConfig {
            mem_budget: Some(budget),
            ..Default::default()
        };
        mpisim::run(nprocs, sim, move |rk| {
            match method {
                Method::Tcio => {
                    let cfg = TcioConfig::for_file_size_with_segment(
                        p2.file_size(rk.nprocs()),
                        rk.nprocs(),
                        seg,
                    );
                    synthetic::write_tcio(rk, &fs, &p2, "/oom", Some(cfg))
                }
                Method::Ocio => {
                    synthetic::write_ocio(rk, &fs, &p2, "/oom", &mpiio::CollectiveConfig::default())
                }
                Method::Vanilla => unreachable!(),
            }
            .map_err(WlError::into_mpi)?;
            Ok(())
        })
    };

    assert!(run(Method::Tcio).is_ok(), "TCIO must fit in the budget");
    match run(Method::Ocio) {
        Err(mpisim::SimError::RankFailed { error, .. }) => {
            assert!(
                matches!(error, mpisim::MpiError::OutOfMemory { .. }),
                "OCIO must die of OOM, got {error}"
            );
        }
        other => panic!("OCIO should have failed with OOM, got {other:?}"),
    }
}

#[test]
fn tcio_handles_single_rank_world() {
    let fs = pfs::Pfs::new(1, pfs::PfsConfig::default()).unwrap();
    let fs2 = Arc::clone(&fs);
    mpisim::run(1, mpisim::SimConfig::default(), move |rk| {
        let cfg = TcioConfig::for_file_size(4096, 1);
        let mut f = TcioFile::open(rk, &fs2, "/solo", TcioMode::Write, cfg.clone())
            .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        for i in 0..64u64 {
            f.write_at(rk, i * 64, &[i as u8; 64])
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        }
        f.close(rk)
            .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        Ok(())
    })
    .unwrap();
    let fid = fs.open("/solo").unwrap();
    let bytes = fs.snapshot_file(fid).unwrap();
    assert_eq!(bytes.len(), 4096);
    for i in 0..64 {
        assert!(bytes[i * 64..(i + 1) * 64].iter().all(|&b| b == i as u8));
    }
}

#[test]
fn moderate_scale_64_ranks_end_to_end() {
    // A smoke run at the paper's smallest scale point.
    let nprocs = 64;
    let p = SynthParams::with_types("i,d", 128, 1).unwrap();
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let rep = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
        let w = synthetic::write_tcio(rk, &fs2, &p2, "/big", None).map_err(WlError::into_mpi)?;
        let r = synthetic::read_tcio(rk, &fs2, &p2, "/big", None).map_err(WlError::into_mpi)?;
        Ok((w.elapsed, r.elapsed))
    })
    .unwrap();
    assert!(rep.results.iter().all(|&(w, r)| w > 0.0 && r > 0.0));
    let agg = rep.aggregate_stats();
    assert!(agg.puts > 0, "one-sided puts must have occurred");
    assert!(agg.gets > 0, "one-sided gets must have occurred");
}

#[test]
fn virtual_time_orders_methods_sensibly() {
    // On the interleaved small-block workload, both collective methods
    // must beat the per-block independent baseline by a wide margin.
    let nprocs = 8;
    let p = SynthParams::with_types("i,d", 4096, 1).unwrap();
    let mut elapsed = Vec::new();
    for method in [Method::Tcio, Method::Ocio, Method::Vanilla] {
        let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
        let p2 = p.clone();
        let rep = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
            synthetic::write_with(method, rk, &fs, &p2, "/t").map_err(WlError::into_mpi)
        })
        .unwrap();
        elapsed.push(rep.results[0].elapsed);
    }
    let (tcio, ocio, vanilla) = (elapsed[0], elapsed[1], elapsed[2]);
    assert!(
        vanilla > 10.0 * tcio,
        "vanilla ({vanilla}s) must be much slower than TCIO ({tcio}s)"
    );
    assert!(
        vanilla > 10.0 * ocio,
        "vanilla ({vanilla}s) must be much slower than OCIO ({ocio}s)"
    );
}
