//! Property-style tests on the substrate invariants: datatype flattening
//! against naive oracles, timeline scheduling laws, and workload geometry.
//! Cases are generated from fixed seeds (or enumerated exhaustively), so
//! every failure is reproducible from the seed in its assertion message.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn pick(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
    lo + rng.next_u64() % (hi - lo)
}

/// A subarray type's extents must equal a naive triple-loop walk of the
/// selected region, in both orderings.
#[test]
fn subarray_matches_naive_walk() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x5ABA ^ seed);
        let ndims = pick(&mut rng, 1, 4) as usize;
        let sizes: Vec<usize> = (0..ndims).map(|_| pick(&mut rng, 1, 6) as usize).collect();
        let mut starts = Vec::new();
        let mut subsizes = Vec::new();
        for &n in &sizes {
            let start = pick(&mut rng, 0, 100) as usize % n;
            let sub = 1 + pick(&mut rng, 0, 100) as usize % (n - start);
            starts.push(start);
            subsizes.push(sub);
        }
        let fortran = rng.random::<bool>();
        let order = if fortran {
            mpisim::Order::Fortran
        } else {
            mpisim::Order::C
        };
        let t = mpisim::Datatype::subarray(
            sizes.clone(),
            subsizes.clone(),
            starts.clone(),
            order,
            mpisim::Datatype::named(mpisim::Named::Byte),
        )
        .unwrap();
        let c = t.commit();
        // Naive oracle: mark every selected element.
        let total: usize = sizes.iter().product();
        let mut want = vec![false; total];
        let n = sizes.len();
        let mut strides = vec![1usize; n];
        if fortran {
            for d in 1..n {
                strides[d] = strides[d - 1] * sizes[d - 1];
            }
        } else {
            for d in (0..n.saturating_sub(1)).rev() {
                strides[d] = strides[d + 1] * sizes[d + 1];
            }
        }
        let mut idx = vec![0usize; n];
        loop {
            let mut at = 0usize;
            for d in 0..n {
                at += (starts[d] + idx[d]) * strides[d];
            }
            want[at] = true;
            let mut done = true;
            for d in 0..n {
                idx[d] += 1;
                if idx[d] < subsizes[d] {
                    done = false;
                    break;
                }
                idx[d] = 0;
            }
            if done {
                break;
            }
        }
        let mut got = vec![false; total];
        for &(off, len) in c.extents() {
            for i in 0..len {
                got[off as usize + i] = true;
            }
        }
        assert_eq!(got, want, "seed {seed}: sizes {sizes:?} starts {starts:?}");
        assert_eq!(c.size(), subsizes.iter().product::<usize>());
    }
}

/// Timeline laws: grants never precede `earliest`, never overlap, and
/// total busy time is conserved.
#[test]
fn timeline_grants_are_legal() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0x71ED ^ seed);
        let nops = pick(&mut rng, 1, 80) as usize;
        let mut t = mpisim::timeline::Timeline::new();
        let mut grants: Vec<(f64, f64)> = Vec::new();
        let mut total = 0.0f64;
        for _ in 0..nops {
            let earliest = pick(&mut rng, 0, 1000) as f64 * 1e-4;
            let dur = pick(&mut rng, 1, 50) as f64 * 1e-4;
            let start = t.reserve(earliest, dur);
            assert!(
                start >= earliest - 1e-12,
                "seed {seed}: grant {start} before earliest {earliest}"
            );
            grants.push((start, start + dur));
            total += dur;
        }
        grants.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in grants.windows(2) {
            assert!(
                w[0].1 <= w[1].0 + 1e-9,
                "seed {seed}: grants overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        assert!((t.total_busy() - total).abs() < 1e-9, "seed {seed}");
    }
}

/// IOR offsets: for any legal geometry, the transfers of all ranks tile
/// the file exactly (no overlap, no hole), strided or segmented.
/// Exhaustive over the seed suite's parameter ranges.
#[test]
fn ior_geometry_tiles_the_file() {
    for nprocs in 1usize..6 {
        for segments in 1usize..4 {
            for transfers in 1u64..6 {
                for xfer in 1u64..5 {
                    for strided in [false, true] {
                        let p = workloads::ior::IorParams {
                            segments,
                            block_size: transfers * xfer * 8,
                            transfer_size: xfer * 8,
                            strided,
                        };
                        p.validate().unwrap();
                        let unit = p.transfer_size;
                        let slots = (p.file_size(nprocs) / unit) as usize;
                        let mut seen = vec![false; slots];
                        for r in 0..nprocs {
                            for s in 0..segments {
                                for t in 0..p.transfers_per_block() {
                                    let off = p.offset(r, nprocs, s, t);
                                    assert_eq!(off % unit, 0);
                                    let slot = (off / unit) as usize;
                                    assert!(!seen[slot], "overlap at {off}");
                                    seen[slot] = true;
                                }
                            }
                        }
                        assert!(seen.iter().all(|&b| b));
                    }
                }
            }
        }
    }
}

/// TCIO segment mapping: locate() and file_offset() are mutually inverse,
/// and every offset's window start is owner-aligned.
#[test]
fn segment_map_inverse_roundtrip() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x5E63 ^ seed);
        let s = 1u64 << pick(&mut rng, 4, 16);
        let nprocs = pick(&mut rng, 1, 80) as usize;
        let offset = pick(&mut rng, 0, 1_000_000_000);
        let m = tcio::SegmentMap::new(s, nprocs);
        let loc = m.locate(offset);
        assert!(loc.owner < nprocs, "seed {seed}");
        assert!(loc.disp < s, "seed {seed}");
        let back = m.file_offset(loc.owner, loc.segment) + loc.disp;
        assert_eq!(back, offset, "seed {seed}");
        let w = m.window_start(offset);
        assert_eq!(w % s, 0, "seed {seed}");
        assert_eq!(m.locate(w).owner, loc.owner, "seed {seed}");
        assert_eq!(m.locate(w).segment, loc.segment, "seed {seed}");
    }
}

/// FLASH offsets partition the checkpoint for arbitrary geometry.
/// Exhaustive over the seed suite's parameter ranges.
#[test]
fn flash_offsets_partition() {
    for nxb in 1usize..5 {
        for guards in 0usize..3 {
            for blocks in 1usize..4 {
                for vars in 1usize..4 {
                    for nprocs in 1usize..5 {
                        let p = workloads::flash::FlashParams {
                            nxb,
                            guards,
                            blocks_per_rank: blocks,
                            num_vars: vars,
                        };
                        let unit = p.interior_var_bytes() as u64;
                        let slots = (p.file_size(nprocs) / unit) as usize;
                        let mut seen = vec![false; slots];
                        for r in 0..nprocs {
                            for b in 0..blocks {
                                for v in 0..vars {
                                    let off = p.var_offset(r, nprocs, b, v);
                                    assert_eq!(off % unit, 0);
                                    let slot = (off / unit) as usize;
                                    assert!(!seen[slot]);
                                    seen[slot] = true;
                                }
                            }
                        }
                        assert!(seen.iter().all(|&b| b));
                    }
                }
            }
        }
    }
}
