//! Facility-level integration tests: the multi-tenant service's three
//! contracts, pinned end to end.
//!
//! * **Zero cost when off** — a single-tenant facility with QoS off is
//!   bit-identical (makespan bits, every stat counter, every file byte)
//!   to a direct `mpisim::run` of the same job body against a bare PFS.
//!   The facility abstraction may not perturb the cost model it wraps.
//! * **Seeded determinism** — across many seeds, a facility run is a
//!   pure function of its config: arrival schedules, per-tenant byte
//!   totals, and virtual clocks reproduce exactly, bytes are conserved,
//!   and no tenant's file ever contains another tenant's pattern.
//! * **QoS isolation** — under `plans/tenant_storm.toml` (a lock storm
//!   pinned to the storm tenant's client range), weighted fair sharing
//!   keeps the victims' job latency inside a fixed tolerance band of
//!   the storm-free run, while FIFO demonstrably blows through it.

use facility::{
    job, run_facility, Comm, FacilityConfig, FacilityError, JobSpec, QosMode, Style, TenantSpec,
};
use mpisim::{Backend, SimConfig};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Zero cost when off
// ---------------------------------------------------------------------

#[test]
fn qos_off_single_tenant_is_bit_identical_to_a_direct_run() {
    const RANKS: usize = 4;
    const JOBS: usize = 2;
    const BPR: u64 = 256 << 10;
    const ACCESS: u64 = 64 << 10;

    let mut t = TenantSpec::new("solo", RANKS);
    t.style = Style::Tcio;
    t.jobs = JOBS;
    t.bytes_per_rank = BPR;
    t.access = ACCESS;
    t.read_back = true;
    let cfg = FacilityConfig {
        tenants: vec![t],
        qos: QosMode::Off,
        ..FacilityConfig::default()
    };
    let fac = run_facility(&cfg).unwrap();

    // The same jobs, hand-rolled on a bare simulator + PFS: no facility,
    // no QoS hooks, no burst buffer. The body mirrors the orchestrator's
    // single-tenant path exactly (shared_state rendezvous, world
    // communicator, per-job barrier) so any cost the facility added
    // would surface as a bit difference.
    let fs = pfs::Pfs::new(RANKS, pfs::PfsConfig::default()).unwrap();
    let fs2 = Arc::clone(&fs);
    let sim = SimConfig {
        backend: Backend::Event,
        ..SimConfig::default()
    };
    let rep = mpisim::run(RANKS, sim, move |rk| {
        let _log = rk.shared_state(|| ())?;
        let comm = Comm::World;
        for j in 0..JOBS {
            comm.barrier(rk)?;
            let spec = JobSpec {
                file: format!("/tenant0/job{j}.dat"),
                style: Style::Tcio,
                bytes_per_rank: BPR,
                access: ACCESS,
                read_back: true,
                hedged_reads: false,
            };
            job::run_job(rk, &comm, &fs2, None, 0, j as u32, &spec)
                .map_err(FacilityError::into_mpi)?;
        }
        Ok(())
    })
    .unwrap();

    assert_eq!(
        fac.makespan.to_bits(),
        rep.makespan.to_bits(),
        "facility makespan {} != direct makespan {}",
        fac.makespan,
        rep.makespan
    );
    assert_eq!(fac.stats, rep.aggregate_stats(), "stat counters diverged");
    for j in 0..JOBS {
        let name = format!("/tenant0/job{j}.dat");
        let fid = fac.fs.open(&name).unwrap();
        let did = fs.open(&name).unwrap();
        assert_eq!(
            fac.fs.snapshot_file(fid).unwrap(),
            fs.snapshot_file(did).unwrap(),
            "file bytes diverged for {name}"
        );
    }
}

// ---------------------------------------------------------------------
// Seeded determinism
// ---------------------------------------------------------------------

fn small_mixed_cfg(seed: u64) -> FacilityConfig {
    let mut a = TenantSpec::new("a", 2);
    a.style = Style::Tcio;
    a.jobs = 2;
    a.bytes_per_rank = 64 << 10;
    a.access = 16 << 10;
    a.arrival_rate = 200.0;
    let mut b = TenantSpec::new("b", 2);
    b.style = Style::Independent;
    b.jobs = 2;
    b.bytes_per_rank = 32 << 10;
    b.access = 8 << 10;
    b.arrival_rate = 200.0;
    b.read_back = true;
    let mut c = TenantSpec::new("c", 2);
    c.style = Style::Ocio;
    c.jobs = 1;
    c.bytes_per_rank = 64 << 10;
    c.access = 16 << 10;
    c.burst_buffer = true;
    FacilityConfig {
        tenants: vec![a, b, c],
        seed,
        ..FacilityConfig::default()
    }
}

#[test]
fn facility_runs_are_pure_functions_of_the_seed() {
    for round in 0..25u64 {
        let seed = 0xDE7E_0000 + round;
        let cfg = small_mixed_cfg(seed);
        let x = run_facility(&cfg).unwrap();
        let y = run_facility(&cfg).unwrap();

        // Identical virtual clocks and job logs, bit for bit.
        assert_eq!(x.makespan.to_bits(), y.makespan.to_bits(), "seed {seed}");
        assert_eq!(x.jobs.len(), y.jobs.len());
        for (jx, jy) in x.jobs.iter().zip(&y.jobs) {
            assert_eq!(jx.arrival.to_bits(), jy.arrival.to_bits(), "seed {seed}");
            assert_eq!(jx.finish.to_bits(), jy.finish.to_bits(), "seed {seed}");
        }
        assert_eq!(x.stats, y.stats, "seed {seed}");

        // Byte conservation: the ledger, the QoS attribution, and the
        // spec all agree on what each tenant wrote.
        for (t, spec) in cfg.tenants.iter().enumerate() {
            let expect = spec.bytes_per_rank * spec.ranks as u64 * spec.jobs as u64;
            assert_eq!(x.tenants[t].bytes_written, expect, "seed {seed} tenant {t}");
            let usage = x.tenants[t].usage.expect("qos on");
            assert_eq!(usage.bytes_written, expect, "seed {seed} tenant {t}");
        }

        // No cross-tenant bleed: every byte of every file is the owning
        // (tenant, job) pattern — any write landing in the wrong file
        // would leave a foreign pattern behind.
        for (t, spec) in cfg.tenants.iter().enumerate() {
            for j in 0..spec.jobs {
                let name = format!("/tenant{t}/job{j}.dat");
                let fid = x.fs.open(&name).unwrap();
                let bytes = x.fs.snapshot_file(fid).unwrap();
                assert_eq!(bytes.len() as u64, spec.bytes_per_rank * spec.ranks as u64);
                for (off, &byte) in bytes.iter().enumerate() {
                    let want = job::pattern_byte(t as u32, j as u32, off as u64);
                    assert_eq!(byte, want, "seed {seed} {name} byte {off} bled");
                }
            }
        }

        // Arrival schedules come from the seed alone.
        let again = facility::arrivals::schedule(seed, 0, 200.0, 2);
        let logged: Vec<f64> = x
            .jobs
            .iter()
            .filter(|r| r.tenant == 0)
            .map(|r| r.arrival)
            .collect();
        assert_eq!(again, logged, "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// QoS isolation under the tenant storm plan
// ---------------------------------------------------------------------

/// The storm fleet: ranks 0-3 and 8-9 are well-behaved victims (weight
/// 2 — the entitled production tenants), ranks 4-7 are the storm tenant
/// `plans/tenant_storm.toml` targets (its `client_lock_storm` range is
/// [4, 7]). `heavy` switches the storm between a token background load
/// (the baseline) and a sustained small-piece convoy; everything else —
/// the victims' specs, their seeded arrival schedules, and the fault
/// plan — is identical in both variants, so any change in victim
/// latency between them is pure cross-tenant queueing interference.
fn storm_cfg(mode: QosMode, heavy: bool, plan: Arc<chaos::ChaosEngine>) -> FacilityConfig {
    let mut victim_a = TenantSpec::new("victim_a", 4);
    victim_a.style = Style::Tcio;
    victim_a.weight = 2.0;
    victim_a.jobs = 3;
    victim_a.bytes_per_rank = 256 << 10;
    victim_a.access = 64 << 10;
    victim_a.arrival_rate = 100.0;
    let mut storm = TenantSpec::new("storm", 4);
    storm.style = Style::Independent;
    storm.access = 16 << 10;
    if heavy {
        storm.jobs = 6;
        storm.bytes_per_rank = 1 << 20;
    } else {
        storm.jobs = 1;
        storm.bytes_per_rank = 16 << 10;
    }
    let mut victim_b = TenantSpec::new("victim_b", 2);
    victim_b.style = Style::Independent;
    victim_b.weight = 2.0;
    victim_b.jobs = 3;
    victim_b.bytes_per_rank = 64 << 10;
    victim_b.access = 16 << 10;
    victim_b.arrival_rate = 100.0;
    FacilityConfig {
        tenants: vec![victim_a, storm, victim_b],
        qos: mode,
        chaos: Some(plan),
        ..FacilityConfig::default()
    }
}

fn storm_engine() -> Arc<chaos::ChaosEngine> {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/plans/tenant_storm.toml"
    ))
    .expect("committed storm plan");
    chaos::FaultPlan::parse(&text)
        .expect("storm plan parses")
        .build()
        .expect("storm plan validates")
}

/// Worst job latency across both victim tenants, in seconds.
fn victim_worst_latency(rep: &facility::FacilityReport) -> f64 {
    rep.jobs
        .iter()
        .filter(|r| r.tenant != 1)
        .map(|r| r.latency())
        .fold(0.0, f64::max)
}

#[test]
fn fair_share_bounds_victims_under_the_storm_plan_and_fifo_does_not() {
    // The inflation band the facility promises its victims: under fair
    // share, turning the storm tenant from a token background load into
    // a sustained convoy may not stretch the worst victim job latency
    // to more than BAND x its light-storm value. FIFO has no such
    // promise, and the same convoy pushes it well past the band — that
    // gap is the headline isolation result, so both halves are asserted
    // (a model change that "fixes" FIFO would silently erase the reason
    // fair share exists).
    const BAND: f64 = 2.0;

    let engine = storm_engine();
    let quiet_fair = victim_worst_latency(
        &run_facility(&storm_cfg(QosMode::FairShare, false, Arc::clone(&engine))).unwrap(),
    );
    let quiet_fifo = victim_worst_latency(
        &run_facility(&storm_cfg(QosMode::Fifo, false, Arc::clone(&engine))).unwrap(),
    );
    let storm_fair = victim_worst_latency(
        &run_facility(&storm_cfg(QosMode::FairShare, true, Arc::clone(&engine))).unwrap(),
    );
    let storm_fifo =
        victim_worst_latency(&run_facility(&storm_cfg(QosMode::Fifo, true, engine)).unwrap());

    assert!(
        storm_fair <= BAND * quiet_fair,
        "fair share failed its isolation band: storm {storm_fair:.5}s vs quiet {quiet_fair:.5}s"
    );
    assert!(
        storm_fifo > BAND * quiet_fifo,
        "FIFO unexpectedly held the band (storm {storm_fifo:.5}s vs quiet {quiet_fifo:.5}s): \
         the ablation no longer demonstrates anything"
    );
    assert!(
        storm_fair < storm_fifo,
        "fair share should beat FIFO under the storm: {storm_fair:.5}s vs {storm_fifo:.5}s"
    );
}

// ---------------------------------------------------------------------
// Whole-fleet smoke: the eight-tenant bench fleet end to end
// ---------------------------------------------------------------------

#[test]
fn the_standard_eight_tenant_fleet_runs_clean() {
    let cfg = FacilityConfig {
        tenants: bench::tenant::fleet(1, 50.0),
        metrics: true,
        ..FacilityConfig::default()
    };
    let rep = run_facility(&cfg).unwrap();
    assert_eq!(rep.tenants.len(), 8);
    assert!(rep.makespan > 0.0);
    let total: u64 = cfg
        .tenants
        .iter()
        .map(|t| t.bytes_per_rank * t.ranks as u64 * t.jobs as u64)
        .sum();
    assert_eq!(rep.total_bytes_written(), total);
    // Per-tenant attribution is complete: QoS usage rows for everyone,
    // burst stats for the staging tenant, registry rows for the scrape.
    assert!(rep.tenants.iter().all(|t| t.usage.is_some()));
    assert!(rep.tenants.iter().any(|t| t.burst.is_some()));
    let reg = rep.registry.as_ref().unwrap();
    for t in 0..8 {
        assert!(
            reg.counter(&format!("facility_tenant{t}_jobs_total"))
                .is_some(),
            "missing registry row for tenant {t}"
        );
    }
}

// ---------------------------------------------------------------------
// Gray-failure defense integration
// ---------------------------------------------------------------------

#[test]
fn health_layer_attached_but_healthy_facility_is_bit_identical() {
    // The defense stack obeys the same zero-cost-off contract as QoS:
    // attaching it to a healthy facility (no chaos) must not move the
    // makespan, any stat counter, or any job record — and every defense
    // counter must stay at zero.
    let bare = run_facility(&small_mixed_cfg(7)).unwrap();
    let defended = run_facility(&FacilityConfig {
        health: Some(pfs::HealthConfig::default()),
        ..small_mixed_cfg(7)
    })
    .unwrap();
    assert_eq!(
        bare.makespan.to_bits(),
        defended.makespan.to_bits(),
        "healthy defense layer perturbed the facility makespan"
    );
    assert_eq!(bare.stats, defended.stats, "stat counters diverged");
    assert_eq!(bare.jobs, defended.jobs, "job records diverged");
    assert!(bare.health.is_none(), "bare run must carry no snapshot");
    let h = defended.health.expect("defended run carries a snapshot");
    assert_eq!(
        (
            h.hedges_issued,
            h.breaker_opens,
            h.degraded_writes,
            h.probes
        ),
        (0, 0, 0, 0),
        "healthy facility must leave every defense counter at zero: {h:?}"
    );
}

#[test]
fn defended_facility_survives_a_flaky_ost_with_verified_read_back() {
    // A flaky OST inside the facility: breakers open, writes relocate,
    // and every tenant's read-back still verifies byte-for-byte (the
    // pattern check lives inside run_job, so a wrong byte fails the
    // run). The per-tenant makespan damage stays bounded relative to
    // the undefended facility under the same plan.
    let plan = chaos::FaultPlan::new(47).with(chaos::Fault::FlakyOst {
        ost: 0,
        factor: 20.0,
        period: 2e-3,
        duty: 0.8,
        from: 0.0,
        until: 10.0,
    });
    let cfg_for = |health: Option<pfs::HealthConfig>| {
        let mut t = TenantSpec::new("solo", 4);
        t.jobs = 2;
        t.bytes_per_rank = 256 << 10;
        t.access = 16 << 10;
        t.read_back = true;
        FacilityConfig {
            tenants: vec![t],
            qos: QosMode::Off,
            pfs: pfs::PfsConfig {
                num_osts: 4,
                stripe_count: 4,
                stripe_size: 16 << 10,
                ..Default::default()
            },
            chaos: Some(plan.clone().build().unwrap()),
            health,
            ..FacilityConfig::default()
        }
    };
    let undefended = run_facility(&cfg_for(None)).unwrap();
    let defended = run_facility(&cfg_for(Some(pfs::HealthConfig {
        min_samples: 4,
        hedge_min_samples: 16,
        ..Default::default()
    })))
    .unwrap();
    let h = defended.health.expect("defended run carries a snapshot");
    assert!(
        h.breaker_opens >= 1,
        "a 20x flaky OST must trip its breaker: {h:?}"
    );
    assert!(
        h.degraded_writes >= 1,
        "writes must relocate around the open breaker: {h:?}"
    );
    assert!(
        defended.makespan < undefended.makespan,
        "defenses must beat the undefended facility under the flaky OST: \
         defended {} vs undefended {}",
        defended.makespan,
        undefended.makespan
    );
}
