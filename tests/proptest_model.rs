//! Property tests on the substrate invariants: datatype flattening against
//! naive oracles, timeline scheduling laws, and workload geometry.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A subarray type's extents must equal a naive triple-loop walk of the
    /// selected region, in both orderings.
    #[test]
    fn subarray_matches_naive_walk(
        sizes in proptest::collection::vec(1usize..6, 1..4),
        frac in proptest::collection::vec((0u32..100, 0u32..100), 1..4),
        fortran in any::<bool>(),
    ) {
        prop_assume!(frac.len() == sizes.len());
        let mut starts = Vec::new();
        let mut subsizes = Vec::new();
        for (d, &(a, b)) in frac.iter().enumerate() {
            let n = sizes[d];
            let start = (a as usize) % n;
            let sub = 1 + (b as usize) % (n - start);
            starts.push(start);
            subsizes.push(sub);
        }
        let order = if fortran { mpisim::Order::Fortran } else { mpisim::Order::C };
        let t = mpisim::Datatype::subarray(
            sizes.clone(),
            subsizes.clone(),
            starts.clone(),
            order,
            mpisim::Datatype::named(mpisim::Named::Byte),
        )
        .unwrap();
        let c = t.commit();
        // Naive oracle: mark every selected element.
        let total: usize = sizes.iter().product();
        let mut want = vec![false; total];
        let n = sizes.len();
        let mut strides = vec![1usize; n];
        if fortran {
            for d in 1..n {
                strides[d] = strides[d - 1] * sizes[d - 1];
            }
        } else {
            for d in (0..n.saturating_sub(1)).rev() {
                strides[d] = strides[d + 1] * sizes[d + 1];
            }
        }
        let mut idx = vec![0usize; n];
        loop {
            let mut at = 0usize;
            for d in 0..n {
                at += (starts[d] + idx[d]) * strides[d];
            }
            want[at] = true;
            let mut done = true;
            for d in 0..n {
                idx[d] += 1;
                if idx[d] < subsizes[d] {
                    done = false;
                    break;
                }
                idx[d] = 0;
            }
            if done {
                break;
            }
        }
        let mut got = vec![false; total];
        for &(off, len) in c.extents() {
            for i in 0..len {
                got[off as usize + i] = true;
            }
        }
        prop_assert_eq!(got, want);
        prop_assert_eq!(c.size(), subsizes.iter().product::<usize>());
    }

    /// Timeline laws: grants never precede `earliest`, never overlap, and
    /// total busy time is conserved.
    #[test]
    fn timeline_grants_are_legal(
        ops in proptest::collection::vec((0u32..1000, 1u32..50), 1..80),
    ) {
        let mut t = mpisim::timeline::Timeline::new();
        let mut grants: Vec<(f64, f64)> = Vec::new();
        let mut total = 0.0f64;
        for &(e, d) in &ops {
            let earliest = e as f64 * 1e-4;
            let dur = d as f64 * 1e-4;
            let start = t.reserve(earliest, dur);
            prop_assert!(start >= earliest - 1e-12, "grant {start} before earliest {earliest}");
            grants.push((start, start + dur));
            total += dur;
        }
        grants.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in grants.windows(2) {
            prop_assert!(
                w[0].1 <= w[1].0 + 1e-9,
                "grants overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        prop_assert!((t.total_busy() - total).abs() < 1e-9);
    }

    /// IOR offsets: for any legal geometry, the transfers of all ranks
    /// tile the file exactly (no overlap, no hole), strided or segmented.
    #[test]
    fn ior_geometry_tiles_the_file(
        nprocs in 1usize..6,
        segments in 1usize..4,
        transfers in 1u64..6,
        xfer in 1u64..5,
        strided in any::<bool>(),
    ) {
        let p = workloads::ior::IorParams {
            segments,
            block_size: transfers * xfer * 8,
            transfer_size: xfer * 8,
            strided,
        };
        p.validate().unwrap();
        let unit = p.transfer_size;
        let slots = (p.file_size(nprocs) / unit) as usize;
        let mut seen = vec![false; slots];
        for r in 0..nprocs {
            for s in 0..segments {
                for t in 0..p.transfers_per_block() {
                    let off = p.offset(r, nprocs, s, t);
                    prop_assert_eq!(off % unit, 0);
                    let slot = (off / unit) as usize;
                    prop_assert!(!seen[slot], "overlap at {}", off);
                    seen[slot] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// TCIO segment mapping: locate() and file_offset() are mutually
    /// inverse, and every offset's window start is owner-aligned.
    #[test]
    fn segment_map_inverse_roundtrip(
        seg_pow in 4u32..16,
        nprocs in 1usize..80,
        offset in 0u64..1_000_000_000,
    ) {
        let s = 1u64 << seg_pow;
        let m = tcio::SegmentMap::new(s, nprocs);
        let loc = m.locate(offset);
        prop_assert!(loc.owner < nprocs);
        prop_assert!(loc.disp < s);
        let back = m.file_offset(loc.owner, loc.segment) + loc.disp;
        prop_assert_eq!(back, offset);
        let w = m.window_start(offset);
        prop_assert_eq!(w % s, 0);
        prop_assert_eq!(m.locate(w).owner, loc.owner);
        prop_assert_eq!(m.locate(w).segment, loc.segment);
    }

    /// FLASH offsets partition the checkpoint for arbitrary geometry.
    #[test]
    fn flash_offsets_partition(
        nxb in 1usize..5,
        guards in 0usize..3,
        blocks in 1usize..4,
        vars in 1usize..4,
        nprocs in 1usize..5,
    ) {
        let p = workloads::flash::FlashParams {
            nxb,
            guards,
            blocks_per_rank: blocks,
            num_vars: vars,
        };
        let unit = p.interior_var_bytes() as u64;
        let slots = (p.file_size(nprocs) / unit) as usize;
        let mut seen = vec![false; slots];
        for r in 0..nprocs {
            for b in 0..blocks {
                for v in 0..vars {
                    let off = p.var_offset(r, nprocs, b, v);
                    prop_assert_eq!(off % unit, 0);
                    let slot = (off / unit) as usize;
                    prop_assert!(!seen[slot]);
                    seen[slot] = true;
                }
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}
