//! Cross-backend differential harness: the event core and the legacy
//! thread-per-rank backend must be **bit-identical** in every observable
//! output — makespan and per-rank clocks (compared as raw `f64` bits),
//! per-rank stats, fabric counters, file bytes on the PFS, the Chrome
//! trace, the metrics-registry export, and the critical-path attribution.
//!
//! The matrix covers the paper's Table-I methods (TCIO, OCIO, independent)
//! crossed with node topology and benign (non-crashing) chaos, plus the
//! ART checkpoint workload, a 50-seed run-twice determinism property on
//! the event backend, and the typed panic-in-rank error on both backends.

use std::sync::Arc;
use workloads::art::{self, ArtConfig, ArtMethod, FttConfig};
use workloads::synthetic::{self, Method, SynthParams};
use workloads::WlError;

use mpisim::Backend;

/// Every observable output of one finished simulation. Floats are stored
/// as raw bits so comparison is exact, not approximate.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    makespan: u64,
    clocks: Vec<u64>,
    stats: Vec<mpisim::RankStats>,
    fabric: mpisim::FabricStatsSnapshot,
    /// Per-rank results, Debug-rendered with floats pre-converted to bits.
    results: String,
    chrome_trace: String,
    metrics_json: String,
    critical_path: String,
    /// `(path, full file contents)` for every output file.
    files: Vec<(String, Vec<u8>)>,
}

/// Field-by-field equality so a divergence names the observable that
/// broke instead of dumping two whole structs.
fn assert_fp_eq(a: &Fingerprint, b: &Fingerprint, ctx: &str) {
    assert_eq!(a.makespan, b.makespan, "{ctx}: makespan");
    assert_eq!(a.clocks, b.clocks, "{ctx}: clocks");
    assert_eq!(a.stats, b.stats, "{ctx}: stats");
    assert_eq!(a.fabric, b.fabric, "{ctx}: fabric counters");
    assert_eq!(a.results, b.results, "{ctx}: per-rank results");
    assert_eq!(a.files, b.files, "{ctx}: file bytes");
    assert_eq!(a.chrome_trace, b.chrome_trace, "{ctx}: chrome trace");
    assert_eq!(a.metrics_json, b.metrics_json, "{ctx}: metrics export");
    assert_eq!(a.critical_path, b.critical_path, "{ctx}: critical path");
}

fn fingerprint<T: std::fmt::Debug>(
    rep: &mpisim::SimReport<T>,
    fs: &Arc<pfs::Pfs>,
    paths: &[&str],
) -> Fingerprint {
    let mut reg = mpisim::Registry::new();
    reg.export_sim_report(rep);
    Fingerprint {
        makespan: rep.makespan.to_bits(),
        clocks: rep.clocks.iter().map(|c| c.to_bits()).collect(),
        stats: rep.stats.clone(),
        fabric: rep.fabric,
        results: format!("{:?}", rep.results),
        chrome_trace: mpisim::chrome_trace_json(&rep.traces),
        metrics_json: reg.to_json(),
        critical_path: insight::Analyzer::new(&rep.traces).critical_path().render(),
        files: paths
            .iter()
            .map(|p| {
                let fid = fs.open(p).expect("output file missing");
                (p.to_string(), fs.snapshot_file(fid).unwrap())
            })
            .collect(),
    }
}

/// A fault plan touching every *benign* family (no crash-stop, no silent
/// corruption — those tests live in `tests/chaos.rs`; here every rank must
/// finish so the two backends produce complete, comparable reports).
fn benign_plan(seed: u64) -> chaos::FaultPlan {
    chaos::FaultPlan::new(seed)
        .with(chaos::Fault::OstSlowdown {
            ost: 0,
            factor: 2.5,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::RequestOverhead {
            extra: 40.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::MessageDelay {
            delay: 20.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::RankStall {
            rank: 1,
            from: 0.0,
            until: 0.002,
        })
        .with(chaos::Fault::RankSlowdown {
            rank: 2,
            factor: 1.3,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::ConnFlush { at: 0.001 })
        .with(chaos::Fault::LockStorm {
            from: 0.0,
            until: 0.0005,
        })
}

fn sim_config(
    backend: Backend,
    topo: Option<mpisim::Topology>,
    chaos_seed: Option<u64>,
) -> (mpisim::SimConfig, Option<Arc<chaos::ChaosEngine>>) {
    let engine = chaos_seed.map(|s| benign_plan(s).build().unwrap());
    let cfg = mpisim::SimConfig {
        backend,
        trace: true,
        metrics: true,
        chaos: engine.clone(),
        topology: topo,
        ..Default::default()
    };
    (cfg, engine)
}

/// Run the Table-I synthetic workload (interleaved-array write + read)
/// under one backend and capture the full fingerprint.
fn run_synth(
    backend: Backend,
    method: Method,
    topo: bool,
    chaos_seed: Option<u64>,
    params: &SynthParams,
) -> Fingerprint {
    let nprocs = 8;
    let pcfg = pfs::PfsConfig {
        num_osts: 4,
        stripe_count: 4,
        ..Default::default()
    };
    let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
    let topo = topo.then(|| mpisim::Topology::blocked(nprocs, 4));
    let (sim, engine) = sim_config(backend, topo, chaos_seed);
    if let Some(e) = &engine {
        fs.attach_chaos(Arc::clone(e)).unwrap();
    }
    let fs2 = Arc::clone(&fs);
    let p2 = params.clone();
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let w = synthetic::write_with(method, rk, &fs2, &p2, "/w").map_err(WlError::into_mpi)?;
        let r = synthetic::read_with(method, rk, &fs2, &p2, "/w").map_err(WlError::into_mpi)?;
        Ok((w.bytes, w.elapsed.to_bits(), r.elapsed.to_bits()))
    })
    .unwrap();
    fingerprint(&rep, &fs, &["/w"])
}

#[test]
fn synthetic_matrix_is_bit_identical_across_backends() {
    let params = SynthParams::with_types("i,d", 512, 2).unwrap();
    // Run every cell before judging, so one divergence doesn't hide the
    // shape of the problem across the rest of the matrix.
    let mut failures = Vec::new();
    for method in [Method::Tcio, Method::Ocio, Method::Vanilla] {
        for topo in [false, true] {
            for chaos_seed in [None, Some(11)] {
                let thread = run_synth(Backend::Thread, method, topo, chaos_seed, &params);
                let event = run_synth(Backend::Event, method, topo, chaos_seed, &params);
                let ctx = format!("method {method:?}, topology {topo}, chaos {chaos_seed:?}");
                let r = std::panic::catch_unwind(|| assert_fp_eq(&thread, &event, &ctx));
                if let Err(p) = r {
                    let msg = p
                        .downcast_ref::<String>()
                        .map(|s| s.lines().next().unwrap_or("").to_string())
                        .unwrap_or_else(|| "non-string panic".into());
                    failures.push(format!("{ctx}: {msg}"));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "diverging cells:\n{}",
        failures.join("\n")
    );
}

/// The pipelined + request-aggregated collective cell: chunked rounds
/// (small `cb_buffer`), deferred round I/O, and the semantic intra-node
/// request merge, on a 2-node topology — the deepest configuration of
/// the two-phase path. Deferred completions reorder clock updates, so
/// this cell guards exactly the machinery the plain `Method::Ocio` cell
/// never touches.
fn run_pipelined_reqagg(backend: Backend, chaos_seed: Option<u64>) -> Fingerprint {
    let nprocs = 8;
    let pcfg = pfs::PfsConfig {
        num_osts: 4,
        stripe_count: 4,
        ..Default::default()
    };
    let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
    let (sim, engine) = sim_config(
        backend,
        Some(mpisim::Topology::blocked(nprocs, 4)),
        chaos_seed,
    );
    if let Some(e) = &engine {
        fs.attach_chaos(Arc::clone(e)).unwrap();
    }
    let params = SynthParams::with_types("i,d", 512, 2).unwrap();
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let ccfg = mpiio::CollectiveConfig {
            cb_buffer: Some(512),
            req_agg: true,
            pipeline: true,
            ..Default::default()
        };
        let w =
            synthetic::write_ocio(rk, &fs2, &params, "/pr", &ccfg).map_err(WlError::into_mpi)?;
        let r = synthetic::read_ocio(rk, &fs2, &params, "/pr", &ccfg).map_err(WlError::into_mpi)?;
        Ok((w.bytes, w.elapsed.to_bits(), r.elapsed.to_bits()))
    })
    .unwrap();
    fingerprint(&rep, &fs, &["/pr"])
}

#[test]
fn pipelined_reqagg_is_bit_identical_across_backends() {
    for chaos_seed in [None, Some(11)] {
        let thread = run_pipelined_reqagg(Backend::Thread, chaos_seed);
        let event = run_pipelined_reqagg(Backend::Event, chaos_seed);
        assert_fp_eq(
            &thread,
            &event,
            &format!("pipelined+req-agg, chaos {chaos_seed:?}"),
        );
    }
}

fn run_art(backend: Backend, method: ArtMethod) -> Fingerprint {
    let nprocs = 8;
    let cfg = ArtConfig {
        num_segments: 16,
        mu: 12.0,
        sigma: 2.0,
        seed: 5,
        ftt: FttConfig::default(),
    };
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    let (sim, engine) = sim_config(backend, Some(mpisim::Topology::blocked(nprocs, 4)), Some(3));
    if let Some(e) = &engine {
        fs.attach_chaos(Arc::clone(e)).unwrap();
    }
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let w = art::dump(rk, &fs2, &cfg, method, "/a").map_err(WlError::into_mpi)?;
        let r = art::restart(rk, &fs2, &cfg, method, "/a").map_err(WlError::into_mpi)?;
        Ok((w.bytes, w.elapsed.to_bits(), r.elapsed.to_bits()))
    })
    .unwrap();
    fingerprint(&rep, &fs, &["/a"])
}

#[test]
fn art_checkpoint_is_bit_identical_across_backends() {
    for method in [ArtMethod::Tcio, ArtMethod::VanillaBuffered] {
        let thread = run_art(Backend::Thread, method);
        let event = run_art(Backend::Event, method);
        assert_fp_eq(&thread, &event, &format!("ART {method:?}"));
    }
}

#[test]
fn event_backend_is_deterministic_across_50_seeds() {
    // Same seed ⇒ byte-identical everything, including the trace report
    // and the metrics-registry export, across repeated runs. The workload
    // shape and fault windows both vary with the seed so the property is
    // not an artifact of one fixed schedule.
    for seed in 0..50u64 {
        let method = [Method::Tcio, Method::Ocio, Method::Vanilla][(seed % 3) as usize];
        let len = 128 + (seed % 7) as usize * 64;
        // Divisors of 64, so any len above is a multiple of size_access.
        let size_access = [1, 2, 4][(seed % 3) as usize];
        let params = SynthParams::with_types("i,d", len, size_access).unwrap();
        let chaos_seed = (seed % 2 == 0).then_some(seed);
        let a = run_synth(Backend::Event, method, seed % 2 == 1, chaos_seed, &params);
        let b = run_synth(Backend::Event, method, seed % 2 == 1, chaos_seed, &params);
        assert_fp_eq(&a, &b, &format!("event backend run-twice, seed {seed}"));
    }
}

#[test]
fn thread_backend_is_deterministic_across_seeds() {
    // The OS-thread substrate runs under the same event loop, so it must
    // be exactly as deterministic as the fiber core — run-to-run, not
    // just run-vs-event. Fewer seeds than the event property: each cell
    // here costs real thread spawns.
    for seed in 0..6u64 {
        let method = [Method::Tcio, Method::Ocio, Method::Vanilla][(seed % 3) as usize];
        let params = SynthParams::with_types("i,d", 256, 2).unwrap();
        let chaos_seed = (seed % 2 == 0).then_some(seed);
        let a = run_synth(Backend::Thread, method, seed % 2 == 1, chaos_seed, &params);
        let b = run_synth(Backend::Thread, method, seed % 2 == 1, chaos_seed, &params);
        assert_fp_eq(&a, &b, &format!("thread backend run-twice, seed {seed}"));
    }
}

#[test]
fn rank_panic_surfaces_as_typed_error_on_both_backends() {
    // A panicking rank must abort the simulation with a *typed* error
    // carrying the rank id and message — never a hang, never a poisoned
    // join panic — and identically on both backends.
    let mut rendered = Vec::new();
    for backend in [Backend::Thread, Backend::Event] {
        let sim = mpisim::SimConfig {
            backend,
            ..Default::default()
        };
        let err = mpisim::run(4, sim, move |rk| {
            if rk.rank() == 2 {
                panic!("boom: injected test panic");
            }
            rk.barrier()?; // unblocked by the abort, not a hang
            Ok(())
        })
        .unwrap_err();
        match &err {
            mpisim::SimError::RankPanicked { rank, message } => {
                assert_eq!(*rank, 2, "{backend:?}: wrong rank blamed");
                assert!(
                    message.contains("boom: injected test panic"),
                    "{backend:?}: panic payload lost: {message:?}"
                );
            }
            other => panic!("{backend:?}: expected RankPanicked, got {other:?}"),
        }
        rendered.push(format!("{err}"));
    }
    assert_eq!(
        rendered[0], rendered[1],
        "error text diverged across backends"
    );
}

/// The gray-failure defended cell: a flaky OST trips its circuit breaker
/// mid-run, so writes relocate to healthy OSTs, reads hedge, and a
/// post-run rebuild migrates the displaced extents home. Every stage of
/// that machinery books virtual time, so the whole defended run — plus
/// the defense counters themselves — must be bit-identical across
/// backends.
fn run_degraded(backend: Backend) -> (Fingerprint, pfs::HealthSnapshot) {
    let nprocs = 8;
    let horizon = 0.05;
    let plan = chaos::FaultPlan::new(41).with(chaos::Fault::FlakyOst {
        ost: 0,
        factor: 16.0,
        period: 1e-3,
        duty: 0.7,
        from: 0.0,
        until: horizon,
    });
    let engine = plan.build().unwrap();
    // Small stripes so the ~48 KiB synthetic file spreads across all four
    // OSTs and the flaky one sees enough traffic to trip its breaker.
    let pcfg = pfs::PfsConfig {
        num_osts: 4,
        stripe_count: 4,
        stripe_size: 4 << 10,
        ..Default::default()
    };
    let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
    fs.attach_chaos(Arc::clone(&engine)).unwrap();
    fs.enable_health(pfs::HealthConfig {
        min_samples: 2,
        hedge_min_samples: 8,
        open_secs: 2e-3,
        ..Default::default()
    })
    .unwrap();
    let sim = mpisim::SimConfig {
        backend,
        trace: true,
        metrics: true,
        chaos: Some(engine),
        topology: Some(mpisim::Topology::blocked(nprocs, 4)),
        ..Default::default()
    };
    let params = SynthParams::with_types("i,d", 512, 2).unwrap();
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let mut cfg = tcio::TcioConfig::for_file_size_with_segment(
            params.file_size(rk.nprocs()),
            rk.nprocs(),
            4 << 10,
        );
        cfg.hedged_reads = true;
        let w = synthetic::write_tcio(rk, &fs2, &params, "/gf", Some(cfg.clone()))
            .map_err(WlError::into_mpi)?;
        let r =
            synthetic::read_tcio(rk, &fs2, &params, "/gf", Some(cfg)).map_err(WlError::into_mpi)?;
        Ok((w.bytes, w.elapsed.to_bits(), r.elapsed.to_bits()))
    })
    .unwrap();
    // Rebuild after the fault horizon so the probe writes land on a
    // healthy OST and the relocation map drains.
    let mut now = rep.makespan.max(horizon);
    for _ in 0..8 {
        if fs.health_report().is_none_or(|s| s.relocated_live == 0) {
            break;
        }
        let r = fs.rebuild(now).unwrap();
        now = r.completed_at.max(now) + 2e-3;
        if r.remaining == 0 {
            break;
        }
    }
    let fp = fingerprint(&rep, &fs, &["/gf"]);
    (fp, fs.health_report().unwrap())
}

#[test]
fn degraded_mode_defense_is_bit_identical_across_backends() {
    let (thread, th) = run_degraded(Backend::Thread);
    let (event, eh) = run_degraded(Backend::Event);
    assert_fp_eq(&thread, &event, "degraded-mode defended run");
    assert_eq!(th, eh, "defense counters diverged across backends");
    // The cell is only a guard if the defenses actually fired.
    assert!(
        th.breaker_opens >= 1,
        "flaky OST never tripped its breaker: {th:?}"
    );
    assert!(
        th.degraded_writes >= 1,
        "no write was relocated around the open breaker: {th:?}"
    );
    assert_eq!(th.relocated_live, 0, "rebuild must converge: {th:?}");
}
