//! Integration tests for failure injection, optimization interplay, and
//! moderate-scale behaviour across the whole stack.

use std::sync::Arc;
use tcio::{TcioConfig, TcioFile, TcioMode};
use workloads::ior::{self, IorParams};
use workloads::synthetic::{self, Method, SynthParams};
use workloads::WlError;

#[test]
fn degraded_ost_slows_the_whole_collective_job() {
    // Inject a 20× slowdown on one OST: every method's makespan must grow,
    // and the data must still verify.
    let nprocs = 8;
    let p = SynthParams::with_types("i,d", 4096, 1).unwrap();
    let mut times = Vec::new();
    for degrade in [false, true] {
        let cfg = pfs::PfsConfig {
            num_osts: 4,
            stripe_count: 4,
            ..Default::default()
        };
        let fs = pfs::Pfs::new(nprocs, cfg).unwrap();
        if degrade {
            fs.set_ost_slowdown(0, 20.0).unwrap();
        }
        let fs2 = Arc::clone(&fs);
        let p2 = p.clone();
        let rep = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
            let w =
                synthetic::write_tcio(rk, &fs2, &p2, "/deg", None).map_err(WlError::into_mpi)?;
            synthetic::read_tcio(rk, &fs2, &p2, "/deg", None).map_err(WlError::into_mpi)?;
            Ok(w.elapsed)
        })
        .unwrap();
        times.push(rep.results[0]);
    }
    assert!(
        times[1] > 1.5 * times[0],
        "a degraded OST must slow the job: healthy {} vs degraded {}",
        times[0],
        times[1]
    );
}

#[test]
fn sieving_speeds_up_strided_independent_io_without_changing_bytes() {
    let nprocs = 4;
    let p = IorParams {
        segments: 2,
        block_size: 4096,
        transfer_size: 256,
        strided: true,
    };
    let mut elapsed = Vec::new();
    let mut snaps = Vec::new();
    for sieve in [false, true] {
        let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let p2 = p.clone();
        let rep = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
            // Hand-rolled vanilla write so we can toggle sieving.
            rk.barrier()?;
            let t0 = rk.now();
            let mut f = mpiio::File::open(rk, &fs2, "/s", mpiio::Mode::WriteOnly)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            if sieve {
                f.set_sieving(Some(mpiio::SieveConfig {
                    min_density: 0.0,
                    ..Default::default()
                }));
            }
            // Set a strided view so each write_at maps to many extents.
            let etype = mpisim::Datatype::contiguous(
                p2.transfer_size as usize,
                mpisim::Datatype::named(mpisim::Named::Byte),
            )
            .commit();
            // The classic resized-filetype idiom: a vector's extent stops at
            // its last block, so it must be resized to the full segment
            // stride (P × block) or consecutive tiles under-stride and the
            // ranks' extents collide.
            let ftype = mpisim::Datatype::resized(
                0,
                (p2.block_size * rk.nprocs() as u64) as usize,
                mpisim::Datatype::vector(
                    p2.transfers_per_block() as usize,
                    1,
                    rk.nprocs() as isize,
                    etype.datatype().clone(),
                ),
            )
            .commit();
            f.set_view(rk, rk.rank() as u64 * p2.transfer_size, &etype, &ftype)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            let data = vec![rk.rank() as u8 + 1; p2.block_size as usize];
            for s in 0..p2.segments {
                f.write_at(rk, s as u64 * p2.block_size, &data)
                    .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            }
            rk.barrier()?;
            Ok(rk.now() - t0)
        })
        .unwrap();
        elapsed.push(rep.results[0]);
        let fid = fs.open("/s").unwrap();
        snaps.push(fs.snapshot_file(fid).unwrap());
    }
    assert_eq!(snaps[0], snaps[1], "sieving must not change file contents");
    assert!(
        elapsed[1] < elapsed[0],
        "sieving must be faster on dense strided writes: {} vs {}",
        elapsed[1],
        elapsed[0]
    );
}

#[test]
fn ior_tcio_beats_vanilla_on_strided_pattern() {
    let nprocs = 8;
    let p = IorParams {
        segments: 2,
        block_size: 8192,
        transfer_size: 64,
        strided: true,
    };
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let rep = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
        let t = ior::write(rk, &fs2, &p2, Method::Tcio, "/t").map_err(WlError::into_mpi)?;
        let v = ior::write(rk, &fs2, &p2, Method::Vanilla, "/v").map_err(WlError::into_mpi)?;
        Ok((t.elapsed, v.elapsed))
    })
    .unwrap();
    let (t, v) = rep.results[0];
    assert!(
        v > 5.0 * t,
        "64-byte strided transfers: vanilla {v}s must be far slower than TCIO {t}s"
    );
}

#[test]
fn art_buffered_vanilla_sits_between_baselines() {
    use workloads::art::{self, ArtConfig, ArtMethod, FttConfig};
    let cfg = ArtConfig {
        num_segments: 16,
        mu: 12.0,
        sigma: 2.0,
        seed: 5,
        ftt: FttConfig::default(),
    };
    let nprocs = 4;
    let mut elapsed = Vec::new();
    for method in [
        ArtMethod::Tcio,
        ArtMethod::VanillaBuffered,
        ArtMethod::Vanilla,
    ] {
        let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
        let fs2 = Arc::clone(&fs);
        let cfg2 = cfg.clone();
        let rep = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
            let w = art::dump(rk, &fs2, &cfg2, method, "/a").map_err(WlError::into_mpi)?;
            art::restart(rk, &fs2, &cfg2, method, "/a").map_err(WlError::into_mpi)?;
            Ok(w.elapsed)
        })
        .unwrap();
        elapsed.push(rep.results[0]);
    }
    let (tcio, sieved, vanilla) = (elapsed[0], elapsed[1], elapsed[2]);
    assert!(
        sieved < vanilla,
        "per-tree buffering must beat plain vanilla: {sieved} vs {vanilla}"
    );
    assert!(
        tcio < sieved,
        "TCIO must beat per-process buffering: {tcio} vs {sieved}"
    );
}

#[test]
fn tcio_scales_to_128_ranks_with_verification() {
    let nprocs = 128;
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    let fs2 = Arc::clone(&fs);
    let block = 64usize;
    let rep = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
        let file_size = (nprocs * 4 * block) as u64;
        let cfg = TcioConfig::for_file_size_with_segment(file_size, rk.nprocs(), 512);
        let mut f = TcioFile::open(rk, &fs2, "/scale", TcioMode::Write, cfg.clone())
            .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        for i in 0..4usize {
            let off = ((i * nprocs + rk.rank()) * block) as u64;
            f.write_at(rk, off, &vec![(rk.rank() % 251) as u8 + 1; block])
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        }
        f.close(rk)
            .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        // Read a peer's block back and verify.
        let peer = (rk.rank() + 1) % nprocs;
        let mut buf = vec![0u8; block];
        {
            let mut g = TcioFile::open(rk, &fs2, "/scale", TcioMode::Read, cfg)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            g.read_at(rk, (peer * block) as u64, &mut buf)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
            g.close(rk)
                .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        }
        let expect = (peer % 251) as u8 + 1;
        assert!(buf.iter().all(|&b| b == expect), "peer block corrupted");
        Ok(())
    })
    .unwrap();
    assert_eq!(rep.results.len(), nprocs);
}

/// One ART dump/restart cycle at `nprocs` ranks on the event core,
/// returning the wall-clock seconds the simulation took to execute.
fn art_scale_run(nprocs: usize) -> f64 {
    use workloads::art::{self, ArtConfig, ArtMethod, FttConfig};
    // One segment per rank, ~3 small trees each: the point is rank count
    // (fiber scheduling, allgather fan-in, aggregator traffic), not bytes.
    let cfg = ArtConfig {
        num_segments: nprocs,
        mu: 3.0,
        sigma: 1.0,
        seed: 7,
        ftt: FttConfig::default(),
    };
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    let fs2 = Arc::clone(&fs);
    let sim = mpisim::SimConfig {
        // Explicit: this is a scale test of the event core. The thread
        // substrate would need one parked OS thread per rank, which is
        // exactly the scaling wall the event core exists to remove.
        backend: mpisim::Backend::Event,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let w = art::dump(rk, &fs2, &cfg, ArtMethod::Tcio, "/big").map_err(WlError::into_mpi)?;
        let r = art::restart(rk, &fs2, &cfg, ArtMethod::Tcio, "/big").map_err(WlError::into_mpi)?;
        assert_eq!(w.bytes, r.bytes, "restart must recover every dumped byte");
        Ok(w.bytes)
    })
    .unwrap();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(rep.results.len(), nprocs);
    assert!(rep.results.iter().all(|&b| b > 0), "every rank wrote data");
    assert!(rep.makespan > 0.0);
    wall
}

#[test]
fn art_scales_to_4096_ranks_within_wall_clock_ceiling() {
    let wall = art_scale_run(4096);
    // Generous ceiling (debug builds on loaded CI machines): the
    // thread-per-rank runtime this replaced couldn't finish a 4096-rank
    // ART in any reasonable time; the event core does it in seconds.
    assert!(
        wall < 120.0,
        "4096-rank ART took {wall:.1}s — event-core scaling regressed"
    );
}

/// Nightly-only (see .github/workflows): the 16k-rank target from the
/// roadmap. Run with `cargo test --release -- --ignored art_scales_to_16k`.
#[test]
#[ignore = "16k ranks: minutes in debug — nightly CI runs it in release"]
fn art_scales_to_16k_ranks_within_wall_clock_ceiling() {
    let wall = art_scale_run(16384);
    assert!(
        wall < 600.0,
        "16384-rank ART took {wall:.1}s — event-core scaling regressed"
    );
}

#[test]
fn memory_budget_interacts_with_sieving() {
    // A sieved write needs a span buffer; with a budget too small for the
    // span, the simulated allocation fails cleanly instead of corrupting.
    let fs = pfs::Pfs::new(1, pfs::PfsConfig::default()).unwrap();
    let sim = mpisim::SimConfig {
        mem_budget: Some(256),
        ..Default::default()
    };
    let err = mpisim::run(1, sim, move |rk| {
        let mut f = mpiio::File::open(rk, &fs, "/b", mpiio::Mode::WriteOnly)
            .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        f.set_sieving(Some(mpiio::SieveConfig {
            buffer_size: 1 << 20,
            min_extents: 2,
            min_density: 0.0,
        }));
        let etype =
            mpisim::Datatype::contiguous(64, mpisim::Datatype::named(mpisim::Named::Byte)).commit();
        let ftype = mpisim::Datatype::vector(8, 1, 4, etype.datatype().clone()).commit();
        f.set_view(rk, 0, &etype, &ftype)
            .map_err(|e| mpisim::MpiError::InvalidDatatype(e.to_string()))?;
        // Span = 8 blocks × 4 stride × 64 B ≈ 1.8 KiB > 256 B budget.
        match f.write_at(rk, 0, &[1u8; 512]) {
            Err(mpiio::IoError::Mpi(e @ mpisim::MpiError::OutOfMemory { .. })) => Err::<(), _>(e),
            other => panic!("expected OOM from sieve buffer, got {other:?}"),
        }
    })
    .unwrap_err();
    assert!(matches!(
        err,
        mpisim::SimError::RankFailed {
            error: mpisim::MpiError::OutOfMemory { .. },
            ..
        }
    ));
}

/// Nightly-only (see .github/workflows): the gray-failure soak. A
/// 20x flaky OST harasses a 1024-rank TCIO dump-then-restart; the
/// defense stack (breakers + degraded-mode relocation + hedged reads +
/// post-run rebuild) must keep the run complete, the tail bounded
/// relative to the fault-free defended run, and the relocation map fully
/// drained. Run with `cargo test --release -- --ignored gray_failure_soak`.
#[test]
#[ignore = "1024-rank gray-failure soak: minutes in debug — nightly CI runs it in release"]
fn gray_failure_soak_bounds_the_tail_and_rebuilds_at_1024_ranks() {
    use bench::resilience::{plan_horizon, run_cell, sweep_calib};
    let calib = sweep_calib(1024);
    let plan = chaos::FaultPlan::new(23).with(chaos::Fault::FlakyOst {
        ost: 0,
        factor: 20.0,
        period: 0.005,
        duty: 0.8,
        from: 0.0,
        until: 30.0,
    });
    let engine = plan.clone().build().unwrap();
    let quiet = run_cell(&calib, 1024, 1 << 21, 1, None, true, 0.0);
    let loud = run_cell(
        &calib,
        1024,
        1 << 21,
        1,
        Some(engine),
        true,
        plan_horizon(&plan),
    );
    assert!(quiet.completed && loud.completed, "soak must finish");
    let h = loud
        .health
        .as_ref()
        .expect("defended arm carries a snapshot");
    assert!(
        h.breaker_opens >= 1 && h.degraded_writes >= 1,
        "the soak must actually provoke the defenses: {h:?}"
    );
    assert_eq!(
        loud.relocated_after_rebuild, 0,
        "rebuild must fully drain the relocation map: {h:?}"
    );
    let makespan_ratio = (loud.write_s + loud.read_s) / (quiet.write_s + quiet.read_s);
    assert!(
        makespan_ratio <= 3.0,
        "defended makespan blew up {makespan_ratio:.2}x under the flaky OST"
    );
    let p999_ratio = loud.p999_ns / quiet.p999_ns;
    assert!(
        p999_ratio <= 4.0,
        "defended p999 blew up {p999_ratio:.2}x under the flaky OST"
    );
}
