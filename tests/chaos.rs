//! Integration tests for the deterministic fault-injection subsystem:
//! zero-cost-off, lock-storm correctness, bit-exact determinism, and the
//! end-to-end TCIO/OCIO resilience criteria.

use std::sync::Arc;
use tcio::{TcioConfig, TcioFile, TcioMode};

fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
    mpisim::MpiError::InvalidDatatype(e.to_string())
}

/// A fault plan touching every family the interleaved workload exercises.
fn mixed_plan() -> chaos::FaultPlan {
    chaos::FaultPlan::new(7)
        .with(chaos::Fault::OstSlowdown {
            ost: 0,
            factor: 3.0,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::OstOutage {
            ost: 2,
            from: 0.0,
            until: 0.01,
        })
        .with(chaos::Fault::RequestOverhead {
            extra: 80.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::MessageDelay {
            delay: 30.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::RankStall {
            rank: 1,
            from: 0.0,
            until: 0.004,
        })
        .with(chaos::Fault::RankSlowdown {
            rank: 3,
            factor: 1.5,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::ConnFlush { at: 0.002 })
        .with(chaos::Fault::LockStorm {
            from: 0.0,
            until: 0.001,
        })
}

/// [`mixed_plan`] plus the crash-stop and silent-corruption families.
/// Used only *scaled to zero* by the zero-cost-off test: adding a live
/// crash to `mixed_plan` itself would change what the full-intensity
/// determinism test measures.
fn extended_plan() -> chaos::FaultPlan {
    mixed_plan()
        .with(chaos::Fault::RankCrash { rank: 1, at: 0.003 })
        .with(chaos::Fault::SilentCorruption {
            rate: 0.3,
            from: 0.0,
            until: 0.05,
        })
}

/// Owner-local, OST-disjoint TCIO dump + restart: rank r's data lives in
/// its own level-2 segment and on its own OST, so virtual times do not
/// depend on host thread scheduling. Returns (clocks, makespan, retries,
/// stalls, bytes).
fn deterministic_tcio_run(
    engine: Option<Arc<chaos::ChaosEngine>>,
    trace: bool,
) -> (Vec<f64>, f64, u64, u64, Vec<u8>) {
    let nprocs = 4;
    let seg: u64 = 1 << 16;
    let pcfg = pfs::PfsConfig {
        stripe_size: seg,
        stripe_count: 4,
        num_osts: 4,
        ..Default::default()
    };
    let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
    if let Some(e) = &engine {
        fs.attach_chaos(Arc::clone(e)).unwrap();
    }
    let sim = mpisim::SimConfig {
        trace,
        chaos: engine,
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let cfg = TcioConfig {
            segment_size: seg,
            num_segments: 1,
            ..Default::default()
        };
        let mut f =
            TcioFile::open(rk, &fs2, "/det", TcioMode::Write, cfg.clone()).map_err(to_mpi)?;
        // Rank r writes exactly its own window [r*seg, (r+1)*seg).
        let data = vec![rk.rank() as u8 + 1; seg as usize];
        f.write_at(rk, rk.rank() as u64 * seg, &data)
            .map_err(to_mpi)?;
        f.close(rk).map_err(to_mpi)?;
        let mut g = TcioFile::open(rk, &fs2, "/det", TcioMode::Read, cfg).map_err(to_mpi)?;
        let mut back = vec![0u8; seg as usize];
        g.read_at(rk, rk.rank() as u64 * seg, &mut back)
            .map_err(to_mpi)?;
        g.fetch(rk).map_err(to_mpi)?;
        g.close(rk).map_err(to_mpi)?;
        Ok(back)
    })
    .unwrap();
    for (r, back) in rep.results.iter().enumerate() {
        assert!(
            back.iter().all(|&b| b == r as u8 + 1),
            "rank {r} read bad data"
        );
    }
    let fid = fs.open("/det").unwrap();
    let bytes = fs.snapshot_file(fid).unwrap();
    let retries: u64 = rep.stats.iter().map(|s| s.io_retries).sum();
    let stalls: u64 = rep.stats.iter().map(|s| s.chaos_stalls).sum();
    (rep.clocks, rep.makespan, retries, stalls, bytes)
}

/// The pipelined + request-aggregated collective write/read (chunked
/// rounds, deferred round I/O, intra-node request merge) under an
/// optional fault engine. Returns (makespan, file bytes).
fn pipelined_collective_run(engine: Option<Arc<chaos::ChaosEngine>>) -> (f64, Vec<u8>) {
    let nprocs = 8;
    let block = 4096usize;
    let pcfg = pfs::PfsConfig {
        stripe_size: 4096,
        stripe_count: 4,
        num_osts: 4,
        ..Default::default()
    };
    let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
    if let Some(e) = &engine {
        fs.attach_chaos(Arc::clone(e)).unwrap();
    }
    let sim = mpisim::SimConfig {
        topology: Some(mpisim::Topology::blocked(nprocs, 4)),
        chaos: engine,
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let ccfg = mpiio::CollectiveConfig {
            cb_buffer: Some(1024), // several rounds per aggregator
            req_agg: true,
            pipeline: true,
            ..Default::default()
        };
        let mut f =
            mpiio::File::open(rk, &fs2, "/pchaos", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
        let data = vec![rk.rank() as u8 + 1; block];
        mpiio::write_all_at(rk, &mut f, (rk.rank() * block) as u64, &data, &ccfg)
            .map_err(to_mpi)?;
        f.close(rk).map_err(to_mpi)?;
        let mut g =
            mpiio::File::open(rk, &fs2, "/pchaos", mpiio::Mode::ReadOnly).map_err(to_mpi)?;
        let mut back = vec![0u8; block];
        mpiio::read_all_at(rk, &mut g, (rk.rank() * block) as u64, &mut back, &ccfg)
            .map_err(to_mpi)?;
        g.close(rk).map_err(to_mpi)?;
        if !back.iter().all(|&b| b == rk.rank() as u8 + 1) {
            return Err(to_mpi(format!("rank {} read bad data", rk.rank())));
        }
        Ok(())
    })
    .unwrap();
    let fid = fs.open("/pchaos").unwrap();
    (rep.makespan, fs.snapshot_file(fid).unwrap())
}

#[test]
fn pipelined_collective_survives_ost_slowdown_and_lock_storm() {
    // Regression for the deferred-completion path under the committed
    // brownout plan (`plans/ost_slowdown.toml`) and a lock-storm: the
    // pipelined round loop must terminate (no deadlock on in-flight
    // handles whose service windows got stretched), land every byte, and
    // each fault family must cost virtual time over the fault-free run.
    let (base_mk, want) = pipelined_collective_run(None);
    assert!(!want.is_empty());

    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/plans/ost_slowdown.toml"
    ))
    .unwrap();
    let slowdown = chaos::FaultPlan::parse(&text).unwrap().build().unwrap();
    let (slow_mk, slow_bytes) = pipelined_collective_run(Some(slowdown));
    assert_eq!(slow_bytes, want, "brownout changed file bytes");
    assert!(
        slow_mk > base_mk,
        "a 6x OST brownout must cost virtual time: {slow_mk} vs {base_mk}"
    );

    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/plans/lock_storm.toml"
    ))
    .unwrap();
    let storm = chaos::FaultPlan::parse(&text).unwrap().build().unwrap();
    let (storm_mk, storm_bytes) = pipelined_collective_run(Some(storm));
    assert_eq!(storm_bytes, want, "lock storm changed file bytes");
    assert!(
        storm_mk > base_mk,
        "a revocation storm must cost virtual time: {storm_mk} vs {base_mk}"
    );

    // Zero-cost-off for the pipelined path: an inert engine (the full
    // extended plan scaled to zero) must leave makespan and bytes
    // bit-identical to no engine at all.
    let inert = extended_plan().scaled(0.0).build().unwrap();
    assert!(inert.is_inert());
    let (inert_mk, inert_bytes) = pipelined_collective_run(Some(inert));
    assert_eq!(inert_bytes, want, "inert engine changed file bytes");
    assert_eq!(inert_mk, base_mk, "inert engine changed the makespan");
}

#[test]
fn faults_disabled_is_bit_identical_to_no_engine() {
    // Zero-cost-off: attaching an engine whose plan was scaled to zero —
    // including the crash-stop and silent-corruption families — must leave
    // both the data and every virtual clock bit-identical to a run with no
    // engine at all (in particular, no durability replication may be set
    // up when no crash is planned).
    let inert = extended_plan().scaled(0.0).build().unwrap();
    assert!(inert.is_inert());
    let (c0, m0, r0, s0, b0) = deterministic_tcio_run(None, false);
    let (c1, m1, r1, s1, b1) = deterministic_tcio_run(Some(inert), false);
    assert_eq!(b0, b1, "inert engine changed file bytes");
    assert_eq!(c0, c1, "inert engine changed rank clocks");
    assert_eq!(m0, m1, "inert engine changed makespan");
    assert_eq!((r0, s0), (0, 0));
    assert_eq!((r1, s1), (0, 0), "inert engine injected faults");
}

#[test]
fn same_seed_same_plan_is_deterministic_across_runs() {
    // Same seed + same plan => identical virtual-time totals, identical
    // fault/retry counts, and identical read-back bytes across 3 runs.
    let mut outcomes = Vec::new();
    for _ in 0..3 {
        let engine = mixed_plan().build().unwrap();
        outcomes.push(deterministic_tcio_run(Some(engine), false));
    }
    let (c, m, r, s, b) = &outcomes[0];
    assert!(*s >= 1, "the stall window must have been absorbed");
    for (i, (ci, mi, ri, si, bi)) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(c, ci, "run {i}: clocks diverged");
        assert_eq!(m, mi, "run {i}: makespan diverged");
        assert_eq!((r, s), (ri, si), "run {i}: fault counters diverged");
        assert_eq!(b, bi, "run {i}: bytes diverged");
    }
}

#[test]
fn lock_storm_ping_pong_keeps_unaligned_writers_correct() {
    // Revocation storm: every request is treated as a lock migration while
    // an outage forces transient retries — unaligned concurrent writers
    // into shared stripes must still land byte-correct, and the storm must
    // cost virtual time.
    let nprocs = 4;
    let block = 1000usize; // unaligned vs the 4096-byte stripes below
    let mut makespans = Vec::new();
    for storm in [false, true] {
        let pcfg = pfs::PfsConfig {
            stripe_size: 4096,
            stripe_count: 1,
            num_osts: 1,
            ..Default::default()
        };
        let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
        let engine = if storm {
            let e = chaos::FaultPlan::new(11)
                .with(chaos::Fault::LockStorm {
                    from: 0.0,
                    until: 1e9,
                })
                .with(chaos::Fault::OstOutage {
                    ost: 0,
                    from: 0.0,
                    until: 0.002,
                })
                .build()
                .unwrap();
            fs.attach_chaos(Arc::clone(&e)).unwrap();
            Some(e)
        } else {
            None
        };
        let sim = mpisim::SimConfig {
            chaos: engine,
            ..Default::default()
        };
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, sim, move |rk| {
            let mut f =
                mpiio::File::open(rk, &fs2, "/storm", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; block];
            f.write_at(rk, (rk.rank() * block) as u64, &data)
                .map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            Ok(rk.stats.io_retries)
        })
        .unwrap();
        if storm {
            let retries: u64 = rep.results.iter().sum();
            assert!(retries >= 1, "the outage must have forced retries");
        }
        makespans.push(rep.makespan);
        let fid = fs.open("/storm").unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        assert_eq!(bytes.len(), nprocs * block);
        for r in 0..nprocs {
            assert!(
                bytes[r * block..(r + 1) * block]
                    .iter()
                    .all(|&b| b == r as u8 + 1),
                "storm={storm}: rank {r}'s block corrupted"
            );
        }
    }
    assert!(
        makespans[1] > makespans[0],
        "a revocation storm must cost virtual time: {} vs {}",
        makespans[1],
        makespans[0]
    );
}

#[test]
fn stalled_node_leader_falls_back_and_two_level_write_completes() {
    // Fault × topology interaction: rank 0 is the default leader of node 0
    // under blocked(8, 4), but a stall window opens just ahead of the
    // two-level exchange. The chaos-aware election must route around it
    // (bumping `leader_fallbacks` on the stand-in), and the collective
    // write must still land every byte.
    let nprocs = 8;
    let block = 2048usize;
    let engine = chaos::FaultPlan::new(31)
        .with(chaos::Fault::RankStall {
            rank: 0,
            from: 1.0e-3,
            until: 0.05,
        })
        .build()
        .unwrap();
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    fs.attach_chaos(Arc::clone(&engine)).unwrap();
    let sim = mpisim::SimConfig {
        topology: Some(mpisim::Topology::blocked(nprocs, 4)),
        chaos: Some(engine),
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let mut f = mpiio::File::open(rk, &fs2, "/lead", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
        let ccfg = mpiio::CollectiveConfig {
            intra_agg: true,
            ..Default::default()
        };
        let data = vec![rk.rank() as u8 + 1; block];
        mpiio::write_all_at(rk, &mut f, (rk.rank() * block) as u64, &data, &ccfg)
            .map_err(to_mpi)?;
        f.close(rk).map_err(to_mpi)?;
        Ok(())
    })
    .unwrap();
    let fallbacks: u64 = rep.stats.iter().map(|s| s.leader_fallbacks).sum();
    assert!(
        fallbacks >= 1,
        "the stalled default leader must have been displaced at least once"
    );
    assert_eq!(
        rep.stats[0].leader_fallbacks, 0,
        "the stalled rank itself must not have led"
    );
    let fid = fs.open("/lead").unwrap();
    let bytes = fs.snapshot_file(fid).unwrap();
    assert_eq!(bytes.len(), nprocs * block);
    for r in 0..nprocs {
        assert!(
            bytes[r * block..(r + 1) * block]
                .iter()
                .all(|&b| b == r as u8 + 1),
            "rank {r}'s block corrupted under a stalled leader"
        );
    }
}

/// OST outage + message delay + a stalled rank; both collective stacks
/// must complete with correct read-back, injected-fault spans in the
/// trace, and the conservation invariant intact.
#[test]
fn tcio_and_ocio_survive_outage_and_message_delay_end_to_end() {
    let nprocs = 4;
    let block = 4096usize;
    for method in ["tcio", "ocio"] {
        let pcfg = pfs::PfsConfig {
            stripe_size: 1 << 16,
            stripe_count: 4,
            num_osts: 4,
            ..Default::default()
        };
        let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
        let engine = chaos::FaultPlan::new(23)
            .with(chaos::Fault::OstOutage {
                ost: 0,
                from: 0.0,
                until: 0.05,
            })
            .with(chaos::Fault::MessageDelay {
                delay: 20.0e-6,
                from: 0.0,
                until: 1e9,
            })
            .with(chaos::Fault::RankStall {
                rank: 1,
                from: 0.0,
                until: 0.003,
            })
            .build()
            .unwrap();
        fs.attach_chaos(Arc::clone(&engine)).unwrap();
        let sim = mpisim::SimConfig {
            trace: true,
            chaos: Some(engine),
            ..Default::default()
        };
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, sim, move |rk| {
            let data = vec![rk.rank() as u8 + 1; block];
            let off = (rk.rank() * block) as u64;
            match method {
                "tcio" => {
                    let cfg = TcioConfig {
                        segment_size: 1 << 14,
                        num_segments: 4,
                        ..Default::default()
                    };
                    let mut f = TcioFile::open(rk, &fs2, "/e2e", TcioMode::Write, cfg.clone())
                        .map_err(to_mpi)?;
                    f.write_at(rk, off, &data).map_err(to_mpi)?;
                    f.close(rk).map_err(to_mpi)?;
                    let mut g =
                        TcioFile::open(rk, &fs2, "/e2e", TcioMode::Read, cfg).map_err(to_mpi)?;
                    let mut back = vec![0u8; block];
                    g.read_at(rk, off, &mut back).map_err(to_mpi)?;
                    g.fetch(rk).map_err(to_mpi)?;
                    g.close(rk).map_err(to_mpi)?;
                    Ok(back)
                }
                _ => {
                    let mut f = mpiio::File::open(rk, &fs2, "/e2e", mpiio::Mode::ReadWrite)
                        .map_err(to_mpi)?;
                    let ccfg = mpiio::CollectiveConfig::default();
                    mpiio::write_all_at(rk, &mut f, off, &data, &ccfg).map_err(to_mpi)?;
                    let mut back = vec![0u8; block];
                    mpiio::read_all_at(rk, &mut f, off, &mut back, &ccfg).map_err(to_mpi)?;
                    f.close(rk).map_err(to_mpi)?;
                    Ok(back)
                }
            }
        })
        .unwrap();
        // Correct read-back on every rank, and on disk.
        for (r, back) in rep.results.iter().enumerate() {
            assert!(
                back.iter().all(|&b| b == r as u8 + 1),
                "{method}: rank {r} read bad data under faults"
            );
        }
        let fid = fs.open("/e2e").unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        for r in 0..nprocs {
            assert!(
                bytes[r * block..(r + 1) * block]
                    .iter()
                    .all(|&b| b == r as u8 + 1),
                "{method}: rank {r}'s block corrupted on disk"
            );
        }
        // The injected faults are visible as spans, and conservation holds.
        let span_names: Vec<&str> = rep
            .traces
            .iter()
            .flat_map(|t| t.spans.iter().map(|s| s.name))
            .collect();
        assert!(
            span_names.contains(&"io_retry"),
            "{method}: outage retries must appear in the trace"
        );
        assert!(
            span_names.contains(&"chaos_stall"),
            "{method}: the stall window must appear in the trace"
        );
        for (r, t) in rep.traces.iter().enumerate() {
            assert!(
                (t.totals.total() - rep.clocks[r]).abs() <= 1e-9,
                "{method}: rank {r} leaked virtual time under faults"
            );
        }
        let retries: u64 = rep.stats.iter().map(|s| s.io_retries).sum();
        assert!(retries >= 1, "{method}: the outage must force retries");
        assert!(
            rep.makespan >= 0.05,
            "{method}: retries must wait out the outage in virtual time"
        );
    }
}

/// Interleaved 4-rank TCIO dump where rank 1 crash-stops (when `engine`
/// says so) after all its writes were acknowledged by a collective flush
/// but before the close-time drain. Returns the on-disk bytes and the
/// per-rank stats.
fn crash_recovery_workload(
    engine: Option<Arc<chaos::ChaosEngine>>,
) -> (Vec<u8>, Vec<mpisim::RankStats>) {
    let nprocs = 4;
    let block = 16usize;
    let blocks_per_rank = 6usize;
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    if let Some(e) = &engine {
        fs.attach_chaos(Arc::clone(e)).unwrap();
    }
    let sim = mpisim::SimConfig {
        trace: true,
        chaos: engine,
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let cfg = TcioConfig {
            segment_size: 64,
            num_segments: 4,
            ..Default::default()
        };
        let mut f = TcioFile::open(rk, &fs2, "/cr", TcioMode::Write, cfg).map_err(to_mpi)?;
        let me = rk.rank();
        let data = vec![me as u8 + 1; block];
        for i in 0..blocks_per_rank {
            let off = ((i * nprocs + me) * block) as u64;
            f.write_at(rk, off, &data).map_err(to_mpi)?;
        }
        // Collective flush: every byte above is now *acknowledged* — parked
        // in its level-2 segment and (under a crash plan) mirrored to the
        // owner's buddy. The durability guarantee covers exactly these.
        f.flush(rk).map_err(to_mpi)?;
        // Move past the crash instant so the failure fires inside close.
        rk.advance(1.0);
        match f.close(rk) {
            Ok(_) => Ok(()),
            // Fault-tolerant caller: the crashed rank's own close fails
            // with the typed error; survivors finish the close (including
            // the buddy's recovery drain) without it.
            Err(tcio::TcioError::Mpi(mpisim::MpiError::RankCrashed { rank })) if rank == me => {
                Ok(())
            }
            Err(e) => Err(to_mpi(e)),
        }
    })
    .unwrap();
    let fid = fs.open("/cr").unwrap();
    (fs.snapshot_file(fid).unwrap(), rep.stats)
}

#[test]
fn crashed_owner_recovery_is_bit_identical_to_fault_free() {
    // Golden run: no faults at all.
    let (golden, base_stats) = crash_recovery_workload(None);
    assert!(base_stats.iter().all(|s| s.rank_crashes == 0));
    assert!(base_stats.iter().all(|s| s.segments_recovered == 0));

    // Crash run: rank 1 (a level-2 segment owner) dies at t = 0.5, after
    // the collective flush acknowledged every byte but before it could
    // drain its segments. Its buddy must reconstruct them from the replica
    // window and drain them instead — bit-identically.
    let engine = chaos::FaultPlan::new(55)
        .with(chaos::Fault::RankCrash { rank: 1, at: 0.5 })
        .build()
        .unwrap();
    let (bytes, stats) = crash_recovery_workload(Some(engine));
    assert_eq!(
        bytes, golden,
        "recovered file must be bit-identical to the fault-free run"
    );
    let crashes: u64 = stats.iter().map(|s| s.rank_crashes).sum();
    assert_eq!(crashes, 1, "exactly rank 1 must have crash-stopped");
    assert_eq!(stats[1].rank_crashes, 1);
    let recovered: u64 = stats.iter().map(|s| s.segments_recovered).sum();
    assert!(
        recovered >= 1,
        "the buddy must have recovered at least one segment"
    );
    assert_eq!(
        stats[1].segments_recovered, 0,
        "the dead rank cannot have drained anything"
    );

    // End-to-end read-back of the recovered file in a fresh, fault-free
    // simulation: every rank sees its own blocks intact.
    let nprocs = 4;
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    let fid = fs.open_or_create("/cr").unwrap();
    for (i, chunk) in bytes.chunks(4096).enumerate() {
        fs.write_at(fid, 0, i as u64 * 4096, chunk, 0.0).unwrap();
    }
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
        let cfg = TcioConfig {
            segment_size: 64,
            num_segments: 4,
            ..Default::default()
        };
        let mut g = TcioFile::open(rk, &fs2, "/cr", TcioMode::Read, cfg).map_err(to_mpi)?;
        let mut back = vec![0u8; 16];
        g.read_at(rk, (rk.rank() * 16) as u64, &mut back)
            .map_err(to_mpi)?;
        g.fetch(rk).map_err(to_mpi)?;
        g.close(rk).map_err(to_mpi)?;
        Ok(back)
    })
    .unwrap();
    for (r, back) in rep.results.iter().enumerate() {
        assert!(
            back.iter().all(|&b| b == r as u8 + 1),
            "rank {r} read bad data from the recovered file"
        );
    }
}

#[test]
fn collectives_with_a_crashed_rank_terminate_with_typed_errors() {
    // The acceptance bar: every collective involving a crashed rank must
    // terminate in finite time with a typed error or a shrunk
    // communicator — never hang. Bound the whole thing by wall-clock.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        // Run A — fault-tolerant body: rank 1 catches its own crash;
        // survivors shrink every collective around the hole and agree on
        // the member list without extra communication.
        let engine = chaos::FaultPlan::new(9)
            .with(chaos::Fault::RankCrash { rank: 1, at: 1e-6 })
            .build()
            .unwrap();
        let sim = mpisim::SimConfig {
            chaos: Some(engine),
            ..Default::default()
        };
        let shrunk = mpisim::run(4, sim, |rk| {
            let me = rk.rank();
            rk.advance(1.0); // everyone is past the crash instant
            let gathered = match rk.allgather(&[me as u8 + 1]) {
                Ok(g) => g,
                Err(mpisim::MpiError::RankCrashed { rank }) if rank == me => {
                    return Ok((Vec::new(), Vec::new(), false));
                }
                Err(e) => return Err(e),
            };
            let survivors = rk.agree_survivors()?;
            // Point-to-point with the dead rank fails typed, not hangs.
            let p2p_typed = matches!(
                rk.recv(Some(1), Some(77)),
                Err(mpisim::MpiError::PeerCrashed { rank: 1 })
            );
            let lens = gathered.iter().map(|v| v.len()).collect();
            Ok((lens, survivors, p2p_typed))
        });

        // Run B — oblivious body: the unhandled crash tears the collective
        // down into a typed simulation error instead of a hang.
        let engine = chaos::FaultPlan::new(9)
            .with(chaos::Fault::RankCrash { rank: 2, at: 1e-6 })
            .build()
            .unwrap();
        let sim = mpisim::SimConfig {
            chaos: Some(engine),
            ..Default::default()
        };
        let aborted = mpisim::run(4, sim, |rk| {
            rk.advance(1.0);
            rk.barrier()?;
            rk.allreduce_u64(1, mpisim::ReduceOp::Sum)
        });
        let _ = tx.send((shrunk, aborted));
    });

    let (shrunk, aborted) = rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("a collective involving a crashed rank hung");

    let rep = shrunk.expect("fault-tolerant survivors must complete");
    for (r, (lens, survivors, p2p_typed)) in rep.results.iter().enumerate() {
        if r == 1 {
            assert!(lens.is_empty(), "the crashed rank returned its sentinel");
            continue;
        }
        assert_eq!(
            lens,
            &vec![1, 0, 1, 1],
            "rank {r}: the dead rank's allgather slot must be empty"
        );
        assert_eq!(survivors, &vec![0, 2, 3], "rank {r}: survivor agreement");
        assert!(p2p_typed, "rank {r}: recv from the dead rank must be typed");
    }
    assert_eq!(rep.stats[1].rank_crashes, 1);

    match aborted {
        Err(mpisim::SimError::CollectiveAborted { crashed_rank: 2 }) => {}
        other => panic!("expected CollectiveAborted for rank 2, got {other:?}"),
    }
}
