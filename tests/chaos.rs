//! Integration tests for the deterministic fault-injection subsystem:
//! zero-cost-off, lock-storm correctness, bit-exact determinism, and the
//! end-to-end TCIO/OCIO resilience criteria.

use std::sync::Arc;
use tcio::{TcioConfig, TcioFile, TcioMode};

fn to_mpi<E: std::fmt::Display>(e: E) -> mpisim::MpiError {
    mpisim::MpiError::InvalidDatatype(e.to_string())
}

/// A fault plan touching every family the interleaved workload exercises.
fn mixed_plan() -> chaos::FaultPlan {
    chaos::FaultPlan::new(7)
        .with(chaos::Fault::OstSlowdown {
            ost: 0,
            factor: 3.0,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::OstOutage {
            ost: 2,
            from: 0.0,
            until: 0.01,
        })
        .with(chaos::Fault::RequestOverhead {
            extra: 80.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::MessageDelay {
            delay: 30.0e-6,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::RankStall {
            rank: 1,
            from: 0.0,
            until: 0.004,
        })
        .with(chaos::Fault::RankSlowdown {
            rank: 3,
            factor: 1.5,
            from: 0.0,
            until: 1e9,
        })
        .with(chaos::Fault::ConnFlush { at: 0.002 })
        .with(chaos::Fault::LockStorm {
            from: 0.0,
            until: 0.001,
        })
}

/// Owner-local, OST-disjoint TCIO dump + restart: rank r's data lives in
/// its own level-2 segment and on its own OST, so virtual times do not
/// depend on host thread scheduling. Returns (clocks, makespan, retries,
/// stalls, bytes).
fn deterministic_tcio_run(
    engine: Option<Arc<chaos::ChaosEngine>>,
    trace: bool,
) -> (Vec<f64>, f64, u64, u64, Vec<u8>) {
    let nprocs = 4;
    let seg: u64 = 1 << 16;
    let pcfg = pfs::PfsConfig {
        stripe_size: seg,
        stripe_count: 4,
        num_osts: 4,
        ..Default::default()
    };
    let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
    if let Some(e) = &engine {
        fs.attach_chaos(Arc::clone(e)).unwrap();
    }
    let sim = mpisim::SimConfig {
        trace,
        chaos: engine,
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let cfg = TcioConfig {
            segment_size: seg,
            num_segments: 1,
            ..Default::default()
        };
        let mut f =
            TcioFile::open(rk, &fs2, "/det", TcioMode::Write, cfg.clone()).map_err(to_mpi)?;
        // Rank r writes exactly its own window [r*seg, (r+1)*seg).
        let data = vec![rk.rank() as u8 + 1; seg as usize];
        f.write_at(rk, rk.rank() as u64 * seg, &data)
            .map_err(to_mpi)?;
        f.close(rk).map_err(to_mpi)?;
        let mut g = TcioFile::open(rk, &fs2, "/det", TcioMode::Read, cfg).map_err(to_mpi)?;
        let mut back = vec![0u8; seg as usize];
        g.read_at(rk, rk.rank() as u64 * seg, &mut back)
            .map_err(to_mpi)?;
        g.fetch(rk).map_err(to_mpi)?;
        g.close(rk).map_err(to_mpi)?;
        Ok(back)
    })
    .unwrap();
    for (r, back) in rep.results.iter().enumerate() {
        assert!(
            back.iter().all(|&b| b == r as u8 + 1),
            "rank {r} read bad data"
        );
    }
    let fid = fs.open("/det").unwrap();
    let bytes = fs.snapshot_file(fid).unwrap();
    let retries: u64 = rep.stats.iter().map(|s| s.io_retries).sum();
    let stalls: u64 = rep.stats.iter().map(|s| s.chaos_stalls).sum();
    (rep.clocks, rep.makespan, retries, stalls, bytes)
}

#[test]
fn faults_disabled_is_bit_identical_to_no_engine() {
    // Zero-cost-off: attaching an engine whose plan was scaled to zero
    // must leave both the data and every virtual clock bit-identical to a
    // run with no engine at all.
    let inert = mixed_plan().scaled(0.0).build().unwrap();
    assert!(inert.is_inert());
    let (c0, m0, r0, s0, b0) = deterministic_tcio_run(None, false);
    let (c1, m1, r1, s1, b1) = deterministic_tcio_run(Some(inert), false);
    assert_eq!(b0, b1, "inert engine changed file bytes");
    assert_eq!(c0, c1, "inert engine changed rank clocks");
    assert_eq!(m0, m1, "inert engine changed makespan");
    assert_eq!((r0, s0), (0, 0));
    assert_eq!((r1, s1), (0, 0), "inert engine injected faults");
}

#[test]
fn same_seed_same_plan_is_deterministic_across_runs() {
    // Same seed + same plan => identical virtual-time totals, identical
    // fault/retry counts, and identical read-back bytes across 3 runs.
    let mut outcomes = Vec::new();
    for _ in 0..3 {
        let engine = mixed_plan().build().unwrap();
        outcomes.push(deterministic_tcio_run(Some(engine), false));
    }
    let (c, m, r, s, b) = &outcomes[0];
    assert!(*s >= 1, "the stall window must have been absorbed");
    for (i, (ci, mi, ri, si, bi)) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(c, ci, "run {i}: clocks diverged");
        assert_eq!(m, mi, "run {i}: makespan diverged");
        assert_eq!((r, s), (ri, si), "run {i}: fault counters diverged");
        assert_eq!(b, bi, "run {i}: bytes diverged");
    }
}

#[test]
fn lock_storm_ping_pong_keeps_unaligned_writers_correct() {
    // Revocation storm: every request is treated as a lock migration while
    // an outage forces transient retries — unaligned concurrent writers
    // into shared stripes must still land byte-correct, and the storm must
    // cost virtual time.
    let nprocs = 4;
    let block = 1000usize; // unaligned vs the 4096-byte stripes below
    let mut makespans = Vec::new();
    for storm in [false, true] {
        let pcfg = pfs::PfsConfig {
            stripe_size: 4096,
            stripe_count: 1,
            num_osts: 1,
            ..Default::default()
        };
        let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
        let engine = if storm {
            let e = chaos::FaultPlan::new(11)
                .with(chaos::Fault::LockStorm {
                    from: 0.0,
                    until: 1e9,
                })
                .with(chaos::Fault::OstOutage {
                    ost: 0,
                    from: 0.0,
                    until: 0.002,
                })
                .build()
                .unwrap();
            fs.attach_chaos(Arc::clone(&e)).unwrap();
            Some(e)
        } else {
            None
        };
        let sim = mpisim::SimConfig {
            chaos: engine,
            ..Default::default()
        };
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, sim, move |rk| {
            let mut f =
                mpiio::File::open(rk, &fs2, "/storm", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
            let data = vec![rk.rank() as u8 + 1; block];
            f.write_at(rk, (rk.rank() * block) as u64, &data)
                .map_err(to_mpi)?;
            f.close(rk).map_err(to_mpi)?;
            Ok(rk.stats.io_retries)
        })
        .unwrap();
        if storm {
            let retries: u64 = rep.results.iter().sum();
            assert!(retries >= 1, "the outage must have forced retries");
        }
        makespans.push(rep.makespan);
        let fid = fs.open("/storm").unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        assert_eq!(bytes.len(), nprocs * block);
        for r in 0..nprocs {
            assert!(
                bytes[r * block..(r + 1) * block]
                    .iter()
                    .all(|&b| b == r as u8 + 1),
                "storm={storm}: rank {r}'s block corrupted"
            );
        }
    }
    assert!(
        makespans[1] > makespans[0],
        "a revocation storm must cost virtual time: {} vs {}",
        makespans[1],
        makespans[0]
    );
}

#[test]
fn stalled_node_leader_falls_back_and_two_level_write_completes() {
    // Fault × topology interaction: rank 0 is the default leader of node 0
    // under blocked(8, 4), but a stall window opens just ahead of the
    // two-level exchange. The chaos-aware election must route around it
    // (bumping `leader_fallbacks` on the stand-in), and the collective
    // write must still land every byte.
    let nprocs = 8;
    let block = 2048usize;
    let engine = chaos::FaultPlan::new(31)
        .with(chaos::Fault::RankStall {
            rank: 0,
            from: 1.0e-3,
            until: 0.05,
        })
        .build()
        .unwrap();
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).unwrap();
    fs.attach_chaos(Arc::clone(&engine)).unwrap();
    let sim = mpisim::SimConfig {
        topology: Some(mpisim::Topology::blocked(nprocs, 4)),
        chaos: Some(engine),
        ..Default::default()
    };
    let fs2 = Arc::clone(&fs);
    let rep = mpisim::run(nprocs, sim, move |rk| {
        let mut f = mpiio::File::open(rk, &fs2, "/lead", mpiio::Mode::WriteOnly).map_err(to_mpi)?;
        let ccfg = mpiio::CollectiveConfig {
            intra_agg: true,
            ..Default::default()
        };
        let data = vec![rk.rank() as u8 + 1; block];
        mpiio::write_all_at(rk, &mut f, (rk.rank() * block) as u64, &data, &ccfg)
            .map_err(to_mpi)?;
        f.close(rk).map_err(to_mpi)?;
        Ok(())
    })
    .unwrap();
    let fallbacks: u64 = rep.stats.iter().map(|s| s.leader_fallbacks).sum();
    assert!(
        fallbacks >= 1,
        "the stalled default leader must have been displaced at least once"
    );
    assert_eq!(
        rep.stats[0].leader_fallbacks, 0,
        "the stalled rank itself must not have led"
    );
    let fid = fs.open("/lead").unwrap();
    let bytes = fs.snapshot_file(fid).unwrap();
    assert_eq!(bytes.len(), nprocs * block);
    for r in 0..nprocs {
        assert!(
            bytes[r * block..(r + 1) * block]
                .iter()
                .all(|&b| b == r as u8 + 1),
            "rank {r}'s block corrupted under a stalled leader"
        );
    }
}

/// OST outage + message delay + a stalled rank; both collective stacks
/// must complete with correct read-back, injected-fault spans in the
/// trace, and the conservation invariant intact.
#[test]
fn tcio_and_ocio_survive_outage_and_message_delay_end_to_end() {
    let nprocs = 4;
    let block = 4096usize;
    for method in ["tcio", "ocio"] {
        let pcfg = pfs::PfsConfig {
            stripe_size: 1 << 16,
            stripe_count: 4,
            num_osts: 4,
            ..Default::default()
        };
        let fs = pfs::Pfs::new(nprocs, pcfg).unwrap();
        let engine = chaos::FaultPlan::new(23)
            .with(chaos::Fault::OstOutage {
                ost: 0,
                from: 0.0,
                until: 0.05,
            })
            .with(chaos::Fault::MessageDelay {
                delay: 20.0e-6,
                from: 0.0,
                until: 1e9,
            })
            .with(chaos::Fault::RankStall {
                rank: 1,
                from: 0.0,
                until: 0.003,
            })
            .build()
            .unwrap();
        fs.attach_chaos(Arc::clone(&engine)).unwrap();
        let sim = mpisim::SimConfig {
            trace: true,
            chaos: Some(engine),
            ..Default::default()
        };
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, sim, move |rk| {
            let data = vec![rk.rank() as u8 + 1; block];
            let off = (rk.rank() * block) as u64;
            match method {
                "tcio" => {
                    let cfg = TcioConfig {
                        segment_size: 1 << 14,
                        num_segments: 4,
                        ..Default::default()
                    };
                    let mut f = TcioFile::open(rk, &fs2, "/e2e", TcioMode::Write, cfg.clone())
                        .map_err(to_mpi)?;
                    f.write_at(rk, off, &data).map_err(to_mpi)?;
                    f.close(rk).map_err(to_mpi)?;
                    let mut g =
                        TcioFile::open(rk, &fs2, "/e2e", TcioMode::Read, cfg).map_err(to_mpi)?;
                    let mut back = vec![0u8; block];
                    g.read_at(rk, off, &mut back).map_err(to_mpi)?;
                    g.fetch(rk).map_err(to_mpi)?;
                    g.close(rk).map_err(to_mpi)?;
                    Ok(back)
                }
                _ => {
                    let mut f = mpiio::File::open(rk, &fs2, "/e2e", mpiio::Mode::ReadWrite)
                        .map_err(to_mpi)?;
                    let ccfg = mpiio::CollectiveConfig::default();
                    mpiio::write_all_at(rk, &mut f, off, &data, &ccfg).map_err(to_mpi)?;
                    let mut back = vec![0u8; block];
                    mpiio::read_all_at(rk, &mut f, off, &mut back, &ccfg).map_err(to_mpi)?;
                    f.close(rk).map_err(to_mpi)?;
                    Ok(back)
                }
            }
        })
        .unwrap();
        // Correct read-back on every rank, and on disk.
        for (r, back) in rep.results.iter().enumerate() {
            assert!(
                back.iter().all(|&b| b == r as u8 + 1),
                "{method}: rank {r} read bad data under faults"
            );
        }
        let fid = fs.open("/e2e").unwrap();
        let bytes = fs.snapshot_file(fid).unwrap();
        for r in 0..nprocs {
            assert!(
                bytes[r * block..(r + 1) * block]
                    .iter()
                    .all(|&b| b == r as u8 + 1),
                "{method}: rank {r}'s block corrupted on disk"
            );
        }
        // The injected faults are visible as spans, and conservation holds.
        let span_names: Vec<&str> = rep
            .traces
            .iter()
            .flat_map(|t| t.spans.iter().map(|s| s.name))
            .collect();
        assert!(
            span_names.contains(&"io_retry"),
            "{method}: outage retries must appear in the trace"
        );
        assert!(
            span_names.contains(&"chaos_stall"),
            "{method}: the stall window must appear in the trace"
        );
        for (r, t) in rep.traces.iter().enumerate() {
            assert!(
                (t.totals.total() - rep.clocks[r]).abs() <= 1e-9,
                "{method}: rank {r} leaked virtual time under faults"
            );
        }
        let retries: u64 = rep.stats.iter().map(|s| s.io_retries).sum();
        assert!(retries >= 1, "{method}: the outage must force retries");
        assert!(
            rep.makespan >= 0.05,
            "{method}: retries must wait out the outage in virtual time"
        );
    }
}
