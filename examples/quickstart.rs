//! Quickstart: the TCIO API in its simplest form.
//!
//! Four simulated MPI ranks write an interleaved shared file through
//! POSIX-like TCIO calls — no application-level buffers, no derived
//! datatypes, no file views — then read it back lazily and verify.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use tcio::{TcioConfig, TcioFile, TcioMode};

fn main() {
    const NPROCS: usize = 4;
    const BLOCK: usize = 1024; // bytes per block
    const BLOCKS_PER_RANK: usize = 16;

    // The simulated parallel file system (Lustre-like: 1 MB stripes over
    // 30 OSTs) shared by all ranks.
    let fs = pfs::Pfs::new(NPROCS, pfs::PfsConfig::default()).expect("pfs");
    let file_size = (NPROCS * BLOCKS_PER_RANK * BLOCK) as u64;

    // --- Write phase -----------------------------------------------------
    let fs_w = Arc::clone(&fs);
    let report = mpisim::run(NPROCS, mpisim::SimConfig::default(), move |rk| {
        let cfg = TcioConfig::for_file_size(file_size, rk.nprocs());
        let mut f = TcioFile::open(rk, &fs_w, "/quickstart.dat", TcioMode::Write, cfg)
            .expect("open for write");
        // The classic collective-I/O-friendly pattern: each rank owns every
        // P-th block of the file (small noncontiguous interleaved writes).
        let payload = vec![rk.rank() as u8 + 1; BLOCK];
        for i in 0..BLOCKS_PER_RANK {
            let offset = ((i * rk.nprocs() + rk.rank()) * BLOCK) as u64;
            f.write_at(rk, offset, &payload).expect("write");
        }
        let stats = f.close(rk).expect("close");
        Ok(stats)
    })
    .expect("write phase");
    println!(
        "write phase: {:.3} ms virtual time, {} level-1 flushes across ranks",
        report.makespan * 1e3,
        report.results.iter().map(|s| s.flushes).sum::<u64>()
    );

    // --- Read phase (lazy) -----------------------------------------------
    let fs_r = Arc::clone(&fs);
    let report = mpisim::run(NPROCS, mpisim::SimConfig::default(), move |rk| {
        let cfg = TcioConfig::for_file_size(file_size, rk.nprocs());
        let mut buf = vec![0u8; BLOCK * BLOCKS_PER_RANK];
        {
            let mut f = TcioFile::open(rk, &fs_r, "/quickstart.dat", TcioMode::Read, cfg)
                .expect("open for read");
            // Lazy reads: these calls only record (offset, destination)…
            let mut rest = buf.as_mut_slice();
            for i in 0..BLOCKS_PER_RANK {
                let offset = ((i * rk.nprocs() + rk.rank()) * BLOCK) as u64;
                let (piece, tail) = rest.split_at_mut(BLOCK);
                rest = tail;
                f.read_at(rk, offset, piece).expect("read");
            }
            // …and the data actually moves here.
            f.fetch(rk).expect("fetch");
            f.close(rk).expect("close");
        }
        // Verify: every byte must be this rank's marker.
        let marker = rk.rank() as u8 + 1;
        assert!(
            buf.iter().all(|&b| b == marker),
            "rank {} read back foreign data",
            rk.rank()
        );
        Ok(buf.len())
    })
    .expect("read phase");
    println!(
        "read phase:  {:.3} ms virtual time, {} bytes verified per rank",
        report.makespan * 1e3,
        report.results[0]
    );
    println!("quickstart OK");
}
