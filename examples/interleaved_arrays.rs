//! The paper's running example (Fig. 2 / Programs 2 & 3): an application
//! computing on two in-memory arrays — one `int`, one `double` — that must
//! interleave them into a single shared file in round-robin block order.
//!
//! This example runs the *same logical output* three ways and shows what
//! each costs the programmer and the machine:
//!
//! 1. **OCIO (Program 2)** — combine both arrays into an application-level
//!    buffer, build `etype`/`filetype` derived datatypes, set the file
//!    view, and issue one collective write.
//! 2. **TCIO (Program 3)** — just compute each block's offset and call
//!    `write_at`; the library aggregates transparently.
//! 3. **Vanilla MPI-IO** — the same POSIX-like loop without any collective
//!    optimization, for contrast.
//!
//! All three produce byte-identical files; the example prints the virtual
//! time and per-process peak memory of each.
//!
//! Run with: `cargo run --example interleaved_arrays`

use std::sync::Arc;
use workloads::synthetic::{self, Method, SynthParams};
use workloads::WlError;

fn run(method: Method, nprocs: usize, p: &SynthParams) -> (f64, u64, Vec<u8>) {
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).expect("pfs");
    let fs2 = Arc::clone(&fs);
    let p2 = p.clone();
    let report = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
        synthetic::write_with(method, rk, &fs2, &p2, "/interleaved.dat").map_err(WlError::into_mpi)
    })
    .expect("run");
    let elapsed = report.results[0].elapsed;
    let peak = report.stats.iter().map(|s| s.mem_peak).max().unwrap();
    let fid = fs.open("/interleaved.dat").expect("file exists");
    let bytes = fs.snapshot_file(fid).expect("snapshot");
    (elapsed, peak, bytes)
}

fn main() {
    let nprocs = 8;
    // LEN = 64K elements per array, SIZE_access = 1: each rank issues
    // 128K noncontiguous writes of 4 or 8 bytes.
    let p = SynthParams::with_types("i,d", 1 << 16, 1).expect("params");
    println!(
        "interleaved arrays: {} procs × 2 arrays × {} elements ({} B blocks, {} file)",
        nprocs,
        p.len_array,
        p.block_size(),
        p.file_size(nprocs)
    );
    println!("{:-<64}", "");

    let mut reference: Option<Vec<u8>> = None;
    for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
        let (elapsed, peak, bytes) = run(method, nprocs, &p);
        let tput = p.file_size(nprocs) as f64 / 1e6 / elapsed;
        println!(
            "{:>7}: {:>9.3} ms virtual, {:>8.1} MB/s, peak {:>7} B/proc",
            method.label(),
            elapsed * 1e3,
            tput,
            peak
        );
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(r, &bytes, "{} produced a different file!", method.label()),
        }
    }
    println!("{:-<64}", "");
    println!("all three methods produced byte-identical files");
    println!(
        "note the programming-effort difference: workloads::synthetic::write_ocio \
         needs the combine buffer + 2 datatypes + a file view; write_tcio is a plain loop \
         (run `cargo run -p bench --bin table3_effort` for the measured LoC comparison)"
    );
}
