//! The cosmology use case (§V.C): checkpoint and restart of an ART-style
//! adaptive-refinement simulation — the workload where OCIO *cannot* be
//! used and TCIO shines.
//!
//! Each process owns variable-length segments of root cells; every root
//! cell carries a fully-threaded refinement tree whose shape changed
//! during the run. A snapshot serializes each tree as a self-describing
//! record of many small arrays of different types and sizes (Fig. 8) — a
//! pattern no single MPI derived datatype can describe, so the MPI-IO
//! collective machinery is out of reach and the realistic baseline is
//! independent I/O.
//!
//! The example dumps a snapshot with TCIO and with vanilla MPI-IO,
//! restarts (reads + verifies) from both, and prints the speedups.
//!
//! Run with: `cargo run --release --example art_checkpoint`

use std::sync::Arc;
use workloads::art::{self, ArtConfig, ArtMethod, FttConfig};
use workloads::WlError;

fn main() {
    let nprocs = 8;
    let cfg = ArtConfig {
        num_segments: 64,
        mu: 24.0,
        sigma: 4.0,
        seed: 5,
        ftt: FttConfig {
            max_depth: 4,
            refine_prob: 0.25,
            num_vars: 2,
        },
    };
    let plan = art::plan(&cfg);
    println!(
        "ART checkpoint: {} segments, {} root cells total, {} procs",
        cfg.num_segments, plan.total_cells, nprocs
    );
    println!("{:-<60}", "");

    let mut results = Vec::new();
    for method in [ArtMethod::Tcio, ArtMethod::Vanilla] {
        let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).expect("pfs");
        let fs_d = Arc::clone(&fs);
        let cfg_d = cfg.clone();
        let dump = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
            art::dump(rk, &fs_d, &cfg_d, method, "/snapshot.art").map_err(WlError::into_mpi)
        })
        .expect("dump");
        let bytes: u64 = dump.results.iter().map(|m| m.bytes).sum();

        let fs_r = Arc::clone(&fs);
        let cfg_r = cfg.clone();
        let restart = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
            // `restart` re-reads every record and verifies it byte-for-byte
            // against the generator.
            art::restart(rk, &fs_r, &cfg_r, method, "/snapshot.art").map_err(WlError::into_mpi)
        })
        .expect("restart");

        let w = dump.results[0].elapsed;
        let r = restart.results[0].elapsed;
        println!(
            "{:>7}: snapshot {:>9} B | dump {:>9.3} ms ({:>7.1} MB/s) | restart {:>9.3} ms ({:>7.1} MB/s)",
            method.label(),
            bytes,
            w * 1e3,
            bytes as f64 / 1e6 / w,
            r * 1e3,
            bytes as f64 / 1e6 / r,
        );
        results.push((w, r));
    }
    println!("{:-<60}", "");
    let (tcio, vanilla) = (&results[0], &results[1]);
    println!(
        "TCIO speedup: {:.1}x on dump, {:.1}x on restart (both restarts verified byte-exact)",
        vanilla.0 / tcio.0,
        vanilla.1 / tcio.1
    );
    println!(
        "(tiny demo problem — the speedup here is inflated; the calibrated Fig. 9/10 numbers \
         come from `cargo run -p bench --bin fig9_10_art`)"
    );
}
