//! A 3-D domain decomposition writing a shared file — the access pattern
//! from the paper's introduction (Fig. 1): SCEC-style slabs and S3D-style
//! cubes mapped onto a one-dimensional file in x,y,z order.
//!
//! With a cube decomposition, every process owns one row per (y, z) pair
//! of its box: many small strided file blocks, interleaved with every
//! other process — exactly where collective aggregation pays off. The
//! example writes the same 3-D field both ways through TCIO, reads a slab
//! back, and verifies.
//!
//! Run with: `cargo run --example tiled_array_3d`

use std::sync::Arc;
use tcio::{TcioConfig, TcioFile, TcioMode};
use workloads::decomp::{cube_extents, slab_extents, Grid3};

/// Deterministic cell payload so readers can verify writers.
fn cell_bytes(offset: u64, len: usize) -> Vec<u8> {
    (0..len as u64)
        .map(|i| (((offset + i).wrapping_mul(0x9E37_79B9)) >> 24) as u8)
        .collect()
}

fn main() {
    // An 32×16×16 grid of 64-byte cells → an 8 MiB shared file.
    let grid = Grid3 {
        nx: 32,
        ny: 16,
        nz: 16,
        cell_bytes: 64,
    };
    let nprocs = 8; // 2×2×2 cubes
    let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).expect("pfs");
    println!(
        "3-D field: {}x{}x{} cells x {} B = {} B file, {} procs",
        grid.nx,
        grid.ny,
        grid.nz,
        grid.cell_bytes,
        grid.file_size(),
        nprocs
    );

    // --- Write with the S3D-style cube decomposition ---------------------
    let fs_w = Arc::clone(&fs);
    let report = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
        let cfg = TcioConfig::for_file_size(grid.file_size(), rk.nprocs());
        let mut f = TcioFile::open(rk, &fs_w, "/field.dat", TcioMode::Write, cfg).expect("open");
        let extents = cube_extents(grid, rk.rank(), 2, 2, 2);
        let nruns = extents.len();
        for (off, len) in extents {
            f.write_at(rk, off, &cell_bytes(off, len as usize))
                .expect("write");
        }
        let stats = f.close(rk).expect("close");
        Ok((nruns, stats.flushes))
    })
    .expect("cube write");
    let (nruns, flushes) = report.results[0];
    println!(
        "cube write: each rank wrote {nruns} strided rows; TCIO coalesced them into {flushes} level-1 flushes ({:.3} ms virtual)",
        report.makespan * 1e3
    );

    // --- Read back with the SCEC-style slab decomposition ----------------
    // Different decomposition on read: each rank now owns whole z-planes,
    // which map to one contiguous file extent.
    let fs_r = Arc::clone(&fs);
    let report = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
        let cfg = TcioConfig::for_file_size(grid.file_size(), rk.nprocs());
        let extents = slab_extents(grid, rk.rank(), rk.nprocs());
        let total: u64 = extents.iter().map(|&(_, l)| l).sum();
        let mut buf = vec![0u8; total as usize];
        {
            let mut f = TcioFile::open(rk, &fs_r, "/field.dat", TcioMode::Read, cfg).expect("open");
            let mut rest = buf.as_mut_slice();
            for &(off, len) in &extents {
                let (piece, tail) = rest.split_at_mut(len as usize);
                rest = tail;
                f.read_at(rk, off, piece).expect("read");
            }
            f.fetch(rk).expect("fetch");
            f.close(rk).expect("close");
        }
        // Verify against the writer's generator.
        let mut cursor = 0usize;
        for &(off, len) in &extents {
            let expect = cell_bytes(off, len as usize);
            assert_eq!(
                &buf[cursor..cursor + len as usize],
                expect.as_slice(),
                "slab read mismatch at file offset {off}"
            );
            cursor += len as usize;
        }
        Ok(total)
    })
    .expect("slab read");
    println!(
        "slab read: {} B per rank verified against the cube writers ({:.3} ms virtual)",
        report.results[0],
        report.makespan * 1e3
    );
    println!("tiled_array_3d OK — cube-written data is slab-readable byte-for-byte");
}
