//! A FLASH-style AMR checkpoint (the paper's reference [9]) written three
//! ways.
//!
//! FLASH keeps each AMR block padded with guard cells; the checkpoint
//! stores only the interiors, block-interleaved across processes. With
//! plain collective MPI-IO this forces the classic dance: extract every
//! interior through a subarray datatype into a combine buffer, build a
//! file view, issue one collective call. With TCIO the application just
//! writes each interior row where it belongs.
//!
//! Run with: `cargo run --release --example flash_checkpoint`

use std::sync::Arc;
use workloads::flash::{self, FlashParams};
use workloads::synthetic::Method;
use workloads::WlError;

fn main() {
    let nprocs = 8;
    let p = FlashParams {
        nxb: 8,
        guards: 4,
        blocks_per_rank: 16,
        num_vars: 4,
    };
    println!(
        "FLASH-style checkpoint: {} procs × {} blocks × {} vars, {}³ interiors in {}³ padded blocks",
        nprocs, p.blocks_per_rank, p.num_vars, p.nxb, p.padded()
    );
    println!(
        "checkpoint size {} B (in-memory state {} B/proc, {:.0}% of it guard cells)\n",
        p.file_size(nprocs),
        p.blocks_per_rank * p.num_vars * p.padded_var_bytes(),
        100.0 * (1.0 - p.interior_var_bytes() as f64 / p.padded_var_bytes() as f64)
    );

    let mut reference: Option<Vec<u8>> = None;
    for method in [Method::Ocio, Method::Tcio, Method::Vanilla] {
        let fs = pfs::Pfs::new(nprocs, pfs::PfsConfig::default()).expect("pfs");
        let fs2 = Arc::clone(&fs);
        let rep = mpisim::run(nprocs, mpisim::SimConfig::default(), move |rk| {
            let w = flash::checkpoint(rk, &fs2, &p, method, "/chk").map_err(WlError::into_mpi)?;
            // Every method's checkpoint is read back and verified interior
            // by interior (guard cells are NaN-poisoned in memory, so any
            // leak would be caught).
            flash::verify_checkpoint(rk, &fs2, &p, "/chk").map_err(WlError::into_mpi)?;
            Ok(w.elapsed)
        })
        .expect("run");
        let elapsed = rep.results[0];
        println!(
            "{:>7}: {:>9.3} ms virtual, {:>8.1} MB/s",
            method.label(),
            elapsed * 1e3,
            p.file_size(nprocs) as f64 / 1e6 / elapsed
        );
        let fid = fs.open("/chk").expect("exists");
        let bytes = fs.snapshot_file(fid).expect("snapshot");
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(r, &bytes, "{} wrote a different checkpoint", method.label()),
        }
    }
    println!("\nall three checkpoints byte-identical; interiors verified, no guard-cell leaks");
}
